package loadgen

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"littleslaw/internal/client"
)

func TestOptionValidation(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Fatal("missing URL accepted")
	}
	if _, err := Run(context.Background(), Options{URL: "http://x", Mode: "bogus"}); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if _, err := Run(context.Background(), Options{URL: "http://x", Mode: "open"}); err == nil {
		t.Fatal("open mode without rate accepted")
	}
}

func TestClosedLoopMaxRequests(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Options{
		URL: ts.URL, Mode: "closed", Concurrency: 3, MaxRequests: 7, Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 7 || res.OK != 7 || hits.Load() != 7 {
		t.Fatalf("res = %s, server hits = %d, want exactly 7", res, hits.Load())
	}
	if res.Successes() != 7 {
		t.Fatalf("latency samples = %d, want 7", res.Successes())
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	start := time.Now()
	res, err := Run(context.Background(), Options{
		URL: ts.URL, MaxRequests: 1, Retries: 2, Duration: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 1 || res.OK != 1 || res.Shed != 0 || res.Retries != 1 || res.RetryAfterSeen != 1 {
		t.Fatalf("res = %+v", res)
	}
	// The retry must actually have slept for the server's 1s hint.
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %s, want >= the 1s Retry-After hint", elapsed)
	}
}

func TestShedWithoutRetryBudget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Options{URL: ts.URL, MaxRequests: 3, Duration: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 3 || res.Shed != 3 || res.OK != 0 || res.Retries != 0 {
		t.Fatalf("res = %+v", res)
	}
	// No Retry-After header was sent, so none should be counted.
	if res.RetryAfterSeen != 0 {
		t.Fatalf("RetryAfterSeen = %d, want 0", res.RetryAfterSeen)
	}
}

func TestNonOKStatusCountsFailed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Options{URL: ts.URL, MaxRequests: 2, Duration: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 2 || res.OK != 0 || res.Shed != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestOpenLoopOffersAtRate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	res, err := Run(context.Background(), Options{
		URL: ts.URL, Mode: "open", Rate: 200, Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~100 arrivals expected; allow generous scheduler slack either way.
	if res.Sent < 50 || res.Sent > 150 {
		t.Fatalf("open loop sent %d in 500ms at 200/s, want ≈100", res.Sent)
	}
	if res.OK != res.Sent {
		t.Fatalf("res = %+v", res)
	}
}

// TestStringConcurrentWithRecording: Result.String must snapshot counters
// under the lock so it is race-free against workers still recording — the
// guarantee a future progress printer relies on (run with -race).
func TestStringConcurrentWithRecording(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	o := Options{URL: ts.URL}
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	base, path, err := splitURL(o.URL)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.New(client.Config{BaseURL: base, Seed: o.Seed})
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	tc := &TargetCounts{Target: o.URL}
	res.perTarget = append(res.perTarget, tc)
	tg := &target{path: path, cl: cl, counts: tc}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = res.String()
				_ = res.Quantile(0.5)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		arrival(context.Background(), tg, &o, res)
	}
	close(stop)
	wg.Wait()
	if res.Sent != 50 || res.OK != 50 {
		t.Fatalf("res = %s, want 50 sent and ok", res)
	}
}

// TestMultiTargetRoundRobin: a fleet of targets shares the arrivals evenly
// (round-robin in arrival order), and the per-target breakdown partitions
// the aggregate exactly.
func TestMultiTargetRoundRobin(t *testing.T) {
	var hits [3]atomic.Int64
	urls := make([]string, 3)
	for i := range urls {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
		}))
		defer ts.Close()
		urls[i] = ts.URL
	}
	res, err := Run(context.Background(), Options{
		Targets: urls, Mode: "closed", Concurrency: 1, MaxRequests: 9, Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 9 || res.OK != 9 {
		t.Fatalf("aggregate = %s, want 9 sent and ok", res)
	}
	per := res.PerTarget()
	if len(per) != 3 {
		t.Fatalf("per-target entries = %d, want 3", len(per))
	}
	for i, tc := range per {
		if tc.Target != urls[i] {
			t.Fatalf("entry %d target = %q, want %q (Options.Targets order)", i, tc.Target, urls[i])
		}
		// One worker round-robining 9 arrivals over 3 targets: exactly 3 each.
		if tc.Sent != 3 || tc.OK != 3 || tc.Shed != 0 || tc.Failed != 0 {
			t.Fatalf("entry %d = %s, want 3 sent / 3 ok", i, tc)
		}
		if got := hits[i].Load(); got != 3 {
			t.Fatalf("server %d saw %d hits, want 3", i, got)
		}
	}
}

// TestMultiTargetAttributesOutcomes: sheds and successes land in the
// counters of the target that produced them, not smeared across the fleet.
func TestMultiTargetAttributesOutcomes(t *testing.T) {
	okTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer okTS.Close()
	shedTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer shedTS.Close()
	res, err := Run(context.Background(), Options{
		Targets: []string{okTS.URL, shedTS.URL},
		Mode:    "closed", Concurrency: 1, MaxRequests: 6, Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 6 || res.OK != 3 || res.Shed != 3 {
		t.Fatalf("aggregate = %s", res)
	}
	per := res.PerTarget()
	if per[0].OK != 3 || per[0].Shed != 0 || per[1].OK != 0 || per[1].Shed != 3 {
		t.Fatalf("per-target = %v, want all OKs on target 0 and all sheds on target 1", per)
	}
}

// TestSingleTargetPerTargetView: a plain -url run still exposes the
// breakdown, with one entry matching the aggregate.
func TestSingleTargetPerTargetView(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	res, err := Run(context.Background(), Options{URL: ts.URL, MaxRequests: 4, Duration: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	per := res.PerTarget()
	if len(per) != 1 || per[0].Target != ts.URL || per[0].Sent != res.Sent || per[0].OK != res.OK {
		t.Fatalf("per-target = %v, aggregate = %s", per, res)
	}
}

// TestScheduleDeterministic is the reproducibility regression test: two
// runs configured with the same seed must offer the exact same arrival
// schedule, tick for tick, for both disciplines — otherwise "replay the
// overload that broke it" is impossible.
func TestScheduleDeterministic(t *testing.T) {
	for _, arrivals := range []string{"uniform", "poisson"} {
		o := Options{
			URL: "http://x", Mode: "open", Rate: 500,
			Arrivals: arrivals, Duration: 2 * time.Second, Seed: 42,
		}
		a, err := Schedule(o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Schedule(o)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 {
			t.Fatalf("%s: empty schedule", arrivals)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: same seed, different lengths: %d vs %d", arrivals, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at arrival %d: %s vs %s", arrivals, i, a[i], b[i])
			}
		}
		for i := 1; i < len(a); i++ {
			if a[i] <= a[i-1] {
				t.Fatalf("%s: schedule not increasing at %d: %s then %s", arrivals, i-1, a[i-1], a[i])
			}
			if a[i] >= o.Duration {
				t.Fatalf("%s: arrival %d at %s past duration %s", arrivals, i, a[i], o.Duration)
			}
		}
	}
}

func TestScheduleSeedAndDisciplineMatter(t *testing.T) {
	base := Options{URL: "http://x", Mode: "open", Rate: 500, Arrivals: "poisson", Duration: time.Second, Seed: 1}
	a, _ := Schedule(base)
	other := base
	other.Seed = 2
	b, _ := Schedule(other)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical Poisson schedules")
		}
	}
	uni := base
	uni.Arrivals = "uniform"
	u, _ := Schedule(uni)
	// Uniform arrivals tick at exactly 1/Rate regardless of seed.
	if want := time.Duration(float64(time.Second) / base.Rate); u[0] != want || u[1] != 2*want {
		t.Fatalf("uniform schedule starts %s, %s; want %s, %s", u[0], u[1], want, 2*want)
	}
}

func TestScheduleRespectsMaxRequests(t *testing.T) {
	o := Options{URL: "http://x", Mode: "open", Rate: 1000, Duration: time.Second, MaxRequests: 5, Seed: 7}
	s, err := Schedule(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 5 {
		t.Fatalf("schedule length = %d, want MaxRequests=5", len(s))
	}
	closed, err := Schedule(Options{URL: "http://x", Mode: "closed"})
	if err != nil || closed != nil {
		t.Fatalf("closed mode schedule = %v, %v; want nil, nil", closed, err)
	}
}

func TestSameSeedRunsOfferIdenticalLoad(t *testing.T) {
	run := func() ([]time.Duration, int64) {
		var mu sync.Mutex
		var stamps []time.Duration
		start := time.Now()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			stamps = append(stamps, time.Since(start))
			mu.Unlock()
		}))
		defer ts.Close()
		res, err := Run(context.Background(), Options{
			URL: ts.URL, Mode: "open", Rate: 100, Arrivals: "poisson",
			Duration: 300 * time.Millisecond, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stamps, res.Sent
	}
	_, sentA := run()
	_, sentB := run()
	// Wall-clock jitter moves individual request times, but the schedule —
	// and therefore the arrival count — is identical run to run.
	if sentA != sentB {
		t.Fatalf("same-seed runs sent %d vs %d arrivals", sentA, sentB)
	}
	want, err := Schedule(Options{
		URL: "http://x", Mode: "open", Rate: 100, Arrivals: "poisson",
		Duration: 300 * time.Millisecond, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(want)) != sentA {
		t.Fatalf("runs sent %d arrivals but Schedule promises %d", sentA, len(want))
	}
}

func TestQuantile(t *testing.T) {
	// Samples appended in completion order, deliberately unsorted — the
	// interleaving a multi-target run produces.
	r := &Result{}
	for _, ms := range []int{50, 10, 30, 20, 40} {
		r.latencies = append(r.latencies, time.Duration(ms)*time.Millisecond)
	}
	single := &Result{latencies: []time.Duration{7 * time.Millisecond}}
	cases := []struct {
		name string
		r    *Result
		q    float64
		want time.Duration
	}{
		{"min", r, 0.0, 10 * time.Millisecond},
		{"median", r, 0.5, 30 * time.Millisecond},
		{"p99", r, 0.99, 50 * time.Millisecond},
		{"max", r, 1.0, 50 * time.Millisecond},
		{"below range clamps to min", r, -0.5, 10 * time.Millisecond},
		{"above range clamps to max", r, 1.5, 50 * time.Millisecond},
		{"+inf clamps to max", r, math.Inf(1), 50 * time.Millisecond},
		{"-inf clamps to min", r, math.Inf(-1), 10 * time.Millisecond},
		{"NaN is zero", r, math.NaN(), 0},
		{"empty is zero", &Result{}, 0.5, 0},
		{"single sample min", single, 0, 7 * time.Millisecond},
		{"single sample median", single, 0.5, 7 * time.Millisecond},
		{"single sample max", single, 1, 7 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := tc.r.Quantile(tc.q); got != tc.want {
			t.Fatalf("%s: Quantile(%v) = %s, want %s", tc.name, tc.q, got, tc.want)
		}
	}
	// Quantile must not mutate the recorded order (it sorts a copy).
	if r.latencies[0] != 50*time.Millisecond || r.latencies[1] != 10*time.Millisecond {
		t.Fatalf("Quantile reordered the underlying samples: %v", r.latencies)
	}
}

// TestSlowestTraceTracksMaxLatency: the result keeps the X-Trace-Id of the
// slowest successful request so a run can end with "pull this waterfall".
func TestSlowestTraceTracksMaxLatency(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := n.Add(1)
		w.Header().Set("X-Trace-Id", fmt.Sprintf("trace-%d", i))
		if i == 2 {
			time.Sleep(30 * time.Millisecond)
		}
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Options{
		URL: ts.URL, Mode: "closed", Concurrency: 1, MaxRequests: 3, Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, lat := res.SlowestTrace()
	if id != "trace-2" {
		t.Fatalf("slowest trace = %q (latency %s), want trace-2", id, lat)
	}
	if lat < 30*time.Millisecond {
		t.Fatalf("slowest latency = %s, want >= the 30ms sleep", lat)
	}
	if lat != res.Quantile(1) {
		t.Fatalf("slowest latency %s != max quantile %s", lat, res.Quantile(1))
	}
}

// TestSlowestTraceEmptyWithoutHeader: servers that don't trace leave the
// field empty rather than recording a bogus id.
func TestSlowestTraceEmptyWithoutHeader(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	res, err := Run(context.Background(), Options{URL: ts.URL, MaxRequests: 2, Duration: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := res.SlowestTrace(); id != "" {
		t.Fatalf("slowest trace = %q, want empty when the server sends no X-Trace-Id", id)
	}
}
