// Package runner is the single execution spine for node simulations: every
// caller in the repository — the littleslaw facade, the experiments and
// ablation pipelines, the autotuner, the profiler, the analysis service,
// the stream replayer and the command-line tools — starts its simulations
// here rather than calling the simulator directly.
//
// The runner deduplicates identical work (singleflight: concurrent
// requests for the same canonical configuration share one execution),
// caches completed results in an LRU keyed on the canonicalized
// sim.Config, and instruments itself: cache hit/miss/bypass counters, an
// in-flight gauge, and — in the spirit of the paper it serves — a
// Little's-Law occupancy gauge. With λ = runs/uptime and W =
// busy_seconds/runs, L = λ·W collapses to busy_seconds/uptime: the
// long-run average number of simulations in flight, derived purely from
// throughput and residence time, compared against the directly-sampled
// in-flight gauge exactly as the paper compares Equation 2 against true
// MSHR occupancy.
package runner

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"littleslaw/internal/engine"
	"littleslaw/internal/faults"
	"littleslaw/internal/metrics"
	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
	"littleslaw/internal/trace"
)

// FaultSite is the fault-injection point on the run spine: evaluated once
// per simulation execution (cache hits never reach it). It honors latency
// and error faults; an injected error on a cached flight is the "poisoned
// entry" case, which Run degrades around by re-executing directly.
const FaultSite = "runner.run"

// Key is the canonical identity of a cacheable simulation: the normalized
// scalar configuration, the full platform parameterization (ablations
// mutate platform copies, so the name alone is not an identity), and the
// caller-declared generator fingerprint.
type Key struct {
	Plat        string // platform fingerprint, not just its name
	Fingerprint string // generator identity from sim.Config.Fingerprint
	Cores       int
	Threads     int
	Window      int
	GapScale    float64
	WarmupFrac  float64
	SMTShare    float64
	SMTExponent float64
}

// String renders the key as a single stable line — the identity a routing
// tier hashes on so identical analyses land on the backend whose runner
// cache already holds the result. Two configs share a String exactly when
// they share a cache entry.
func (k Key) String() string {
	return fmt.Sprintf("%s|%s|c%d|t%d|w%d|g%g|wf%g|ss%g|se%g",
		k.Plat, k.Fingerprint, k.Cores, k.Threads, k.Window,
		k.GapScale, k.WarmupFrac, k.SMTShare, k.SMTExponent)
}

// KeyOf canonicalizes cfg into its cache key. cacheable is false — and the
// Key meaningless — when the config opted out of caching: an empty
// Fingerprint (the generator's identity is unknown) or a ConfigureHierarchy
// hook (the run's behaviour is not a function of the key). An invalid
// config returns the validation error.
func KeyOf(cfg sim.Config) (key Key, cacheable bool, err error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return Key{}, false, err
	}
	return keyOfNormalized(norm)
}

func keyOfNormalized(norm sim.Config) (Key, bool, error) {
	if norm.Fingerprint == "" || norm.ConfigureHierarchy != nil {
		return Key{}, false, nil
	}
	return Key{
		Plat:        PlatformFingerprint(norm.Plat),
		Fingerprint: norm.Fingerprint,
		Cores:       norm.Cores,
		Threads:     norm.ThreadsPerCore,
		Window:      norm.Window,
		GapScale:    norm.GapScale,
		WarmupFrac:  norm.WarmupFrac,
		SMTShare:    norm.SMTShare,
		SMTExponent: norm.SMTExponent,
	}, true, nil
}

// PlatformFingerprint renders every simulation-relevant field of p,
// dereferencing the optional L3 and memory-side-cache blocks so two
// distinct platform values with equal contents fingerprint equally.
func PlatformFingerprint(p *platform.Platform) string {
	flat := *p
	flat.L3, flat.MemCache = nil, nil
	s := fmt.Sprintf("%+v", flat)
	if p.L3 != nil {
		s += fmt.Sprintf("|L3=%+v", *p.L3)
	}
	if p.MemCache != nil {
		s += fmt.Sprintf("|MC=%+v", *p.MemCache)
	}
	return s
}

// Stats is a snapshot of a Runner's self-instrumentation.
type Stats struct {
	Hits     uint64 // served from cache or by joining an in-flight run
	Misses   uint64 // executed (and cached) on behalf of the caller
	Bypasses uint64 // uncacheable configs executed directly
	// Fallbacks counts cache entries poisoned by an injected fault that
	// were degraded to a direct re-execution.
	Fallbacks uint64
	// StaleServes counts expired cache entries knowingly served by
	// RunStale under brownout; Expirations counts expired entries Run
	// dropped and recomputed.
	StaleServes uint64
	Expirations uint64
	InFlight    int64 // simulations executing right now
	// Occupancy is the Little's-Law average number of simulations in
	// flight since the Runner was built: busy_seconds / uptime.
	Occupancy float64
}

// entry is a cached result plus its completion time, so a TTL can
// distinguish fresh from expired without a second map.
type entry struct {
	res *sim.Result
	at  time.Time
}

// Runner executes node simulations through a singleflight LRU cache.
// Cached *sim.Result values are shared between callers and must be treated
// as immutable.
type Runner struct {
	cache *engine.LRU[Key, entry]
	ttl   atomic.Int64 // nanoseconds; 0 = entries never expire

	hits        metrics.Counter
	misses      metrics.Counter
	bypasses    metrics.Counter
	fallbacks   metrics.Counter
	staleServes metrics.Counter
	expirations metrics.Counter
	inflight    metrics.Gauge
	busyNs      atomic.Int64
	start       time.Time
	now         func() time.Time // test hook; time.Now by default
}

// New builds a Runner retaining at most capacity completed results
// (capacity <= 0 means unbounded).
func New(capacity int) *Runner {
	return &Runner{cache: engine.NewLRU[Key, entry](capacity), start: time.Now(), now: time.Now}
}

// SetTTL bounds how long a cached result counts as fresh. Zero (the
// default) disables expiry entirely — the seed behaviour. With a TTL set,
// Run drops and recomputes expired entries, while RunStale may serve them
// marked stale when the brownout ladder asks for cheap answers.
func (r *Runner) SetTTL(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.ttl.Store(int64(d))
}

// expired reports whether e is past the TTL.
func (r *Runner) expired(e entry) bool {
	ttl := r.ttl.Load()
	return ttl > 0 && r.now().Sub(e.at) > time.Duration(ttl)
}

// defaultCapacity bounds the process-wide cache. A full six-table
// regeneration across three platforms needs ~90 distinct runs; 512 leaves
// room for sweeps and service traffic on top without unbounded growth.
const defaultCapacity = 512

var std = New(defaultCapacity)

// Default returns the process-wide Runner every layer shares; using it is
// what makes cross-caller deduplication (a service request joining a
// pipeline's in-flight run) happen.
func Default() *Runner { return std }

// Run executes cfg through the default Runner.
func Run(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
	return std.Run(ctx, cfg)
}

// Run executes cfg, deduplicating against concurrent and past runs of the
// same canonical configuration. Uncacheable configs (empty Fingerprint or
// a ConfigureHierarchy hook) execute directly. The returned result may be
// shared with other callers; treat it as immutable.
func (r *Runner) Run(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
	// The "runner" span is the spine's own (exclusive) overhead —
	// canonicalization and cache bookkeeping — noted with the cache
	// outcome; the kernel itself reports as the "sim" stage from execute.
	note := "miss"
	a := trace.Begin(ctx, "runner")
	defer func() { a.End(note) }()
	norm, err := cfg.Normalized()
	if err != nil {
		note = "error"
		return nil, err
	}
	key, cacheable, err := keyOfNormalized(norm)
	if err != nil {
		note = "error"
		return nil, err
	}
	if !cacheable {
		note = "bypass"
		r.bypasses.Inc()
		return r.execute(ctx, norm)
	}
	// The retry loop exists only for TTL expiry: a hit on an expired entry
	// drops it and goes around once more, which then misses and recomputes.
	// Concurrent re-seeding can cost at most one extra lap, so the bound is
	// a formality.
	for attempt := 0; ; attempt++ {
		e, hit, err := r.cache.Do(ctx, key, func(ctx context.Context) (entry, error) {
			res, err := r.execute(ctx, norm)
			return entry{res: res, at: r.now()}, err
		})
		if err != nil {
			// Graceful degradation: a flight that failed because the fault
			// layer poisoned it (not because the config is bad or the context
			// expired) is retried as a direct, uncached run rather than
			// surfacing chaos to the caller. The failed flight was already
			// forgotten by the cache, so nothing stale lingers either way.
			if faults.IsFault(err) && ctx.Err() == nil {
				note = "fallback"
				r.fallbacks.Inc()
				return r.execute(ctx, norm)
			}
			note = "error"
			return nil, err
		}
		if hit && r.expired(e) && attempt < 3 {
			r.expirations.Inc()
			r.cache.Forget(key)
			continue
		}
		if hit {
			note = "hit"
			r.hits.Inc()
		} else {
			r.misses.Inc()
		}
		return e.res, nil
	}
}

// RunStale is Run's brownout sibling: it serves any completed cache entry
// for cfg — fresh or expired — without ever waiting on an in-flight
// computation, and only pays for an execution when the cache holds nothing
// at all. The second return reports whether the answer is stale (past the
// TTL), which the caller must surface to its own caller as a degradation
// marker. Fresh answers and cache misses behave exactly like Run.
func (r *Runner) RunStale(ctx context.Context, cfg sim.Config) (res *sim.Result, stale bool, err error) {
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, false, err
	}
	key, cacheable, err := keyOfNormalized(norm)
	if err != nil {
		return nil, false, err
	}
	if cacheable {
		if e, ok := r.cache.Peek(key); ok {
			if r.expired(e) {
				trace.Add(ctx, "runner", "stale", 0, 0)
				r.staleServes.Inc()
				return e.res, true, nil
			}
			trace.Add(ctx, "runner", "hit", 0, 0)
			r.hits.Inc()
			return e.res, false, nil
		}
	}
	res, err = r.Run(ctx, cfg)
	return res, false, err
}

func (r *Runner) execute(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
	r.inflight.Inc()
	begin := time.Now()
	defer func() {
		busy := time.Since(begin)
		// The kernel is a leaf stage: its span is the measured busy time
		// itself — the same quantity the occupancy gauge accumulates, so
		// the trace_stage_navg{stage="sim"} metric and
		// <prefix>_littles_occupancy must reconcile.
		trace.Add(ctx, "sim", "", 0, busy)
		r.busyNs.Add(busy.Nanoseconds())
		r.inflight.Dec()
	}()
	switch f := faults.Global().Eval(FaultSite); f.Kind {
	case faults.KindLatency:
		f.Sleep(ctx)
	case faults.KindError:
		return nil, f.Err()
	}
	return sim.RunContext(ctx, cfg)
}

// Forget drops the cached result for cfg's canonical key, if any, so the
// next Run re-executes. Uncacheable configs are a no-op.
func (r *Runner) Forget(cfg sim.Config) {
	if key, cacheable, err := KeyOf(cfg); err == nil && cacheable {
		r.cache.Forget(key)
	}
}

// Len returns the number of cached (or in-flight) entries.
func (r *Runner) Len() int { return r.cache.Len() }

// Stats snapshots the Runner's counters.
func (r *Runner) Stats() Stats {
	return Stats{
		Hits:        r.hits.Value(),
		Misses:      r.misses.Value(),
		Bypasses:    r.bypasses.Value(),
		Fallbacks:   r.fallbacks.Value(),
		StaleServes: r.staleServes.Value(),
		Expirations: r.expirations.Value(),
		InFlight:    r.inflight.Value(),
		Occupancy:   r.occupancy(),
	}
}

func (r *Runner) occupancy() float64 {
	up := time.Since(r.start).Seconds()
	if up <= 0 {
		return 0
	}
	return float64(r.busyNs.Load()) / 1e9 / up
}

// Register exposes the Runner's instrumentation on reg under the given
// metric-name prefix (e.g. "littleslaw_runner").
func (r *Runner) Register(reg *metrics.Registry, prefix string) {
	reg.DerivedCounter(prefix+"_cache_hits_total",
		"Simulations served from the runner cache or a shared in-flight run.",
		r.hits.Value)
	reg.DerivedCounter(prefix+"_cache_misses_total",
		"Simulations executed and cached by the runner.",
		r.misses.Value)
	reg.DerivedCounter(prefix+"_cache_bypass_total",
		"Uncacheable simulations executed directly (no fingerprint or hierarchy hook).",
		r.bypasses.Value)
	reg.DerivedCounter(prefix+"_fault_fallbacks_total",
		"Cached flights poisoned by an injected fault and degraded to a direct re-execution.",
		r.fallbacks.Value)
	reg.DerivedCounter(prefix+"_stale_serves_total",
		"Expired cache entries knowingly served by RunStale under brownout.",
		r.staleServes.Value)
	reg.DerivedCounter(prefix+"_expirations_total",
		"Expired cache entries dropped and recomputed by Run.",
		r.expirations.Value)
	reg.Derived(prefix+"_inflight",
		"Simulations executing right now (directly sampled).",
		func() float64 { return float64(r.inflight.Value()) })
	reg.Derived(prefix+"_littles_occupancy",
		"Little's-Law average simulations in flight: busy seconds / uptime (L = lambda*W).",
		r.occupancy)
}
