package runner

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// countingConfig builds a small cacheable config whose factory invocations
// are counted: each simulation executed calls NewGen once per hardware
// thread, so execs tracks how many times the simulator actually ran.
func countingConfig(fingerprint string, execs *atomic.Int64) sim.Config {
	return sim.Config{
		Plat:        platform.SKL(),
		Cores:       2,
		Fingerprint: fingerprint,
		NewGen: func(coreID, threadID int) cpu.Generator {
			if coreID == 0 && threadID == 0 {
				execs.Add(1)
			}
			base := uint64(coreID+1) << 34
			i := 0
			return cpu.GeneratorFunc(func() (cpu.Op, bool) {
				if i >= 600 {
					return cpu.Op{}, false
				}
				i++
				return cpu.Op{Addr: base + uint64(i)*8, Kind: memsys.Load, GapCycles: 2, Work: 1}, true
			})
		},
	}
}

func TestKeyCanonicalization(t *testing.T) {
	p := platform.SKL()
	execs := atomic.Int64{}
	// Zero-default form and its explicitly spelled-out equivalent.
	implicit := countingConfig("test/canon", &execs)
	explicit := countingConfig("test/canon", &execs)
	explicit.ThreadsPerCore = 1
	explicit.Window = p.DemandWindow
	explicit.GapScale = 1
	explicit.WarmupFrac = 0.15

	ki, oki, err := KeyOf(implicit)
	if err != nil || !oki {
		t.Fatalf("KeyOf(implicit) = cacheable %v, err %v", oki, err)
	}
	ke, oke, err := KeyOf(explicit)
	if err != nil || !oke {
		t.Fatalf("KeyOf(explicit) = cacheable %v, err %v", oke, err)
	}
	if ki != ke {
		t.Fatalf("equivalent configs canonicalized differently:\n  %+v\n  %+v", ki, ke)
	}

	// Different platform contents (not name) must change the key, since
	// ablations run mutated platform copies under the same name.
	mutated := *p
	mutated.L1.MSHRs++
	cfgM := countingConfig("test/canon", &execs)
	cfgM.Plat = &mutated
	km, _, err := KeyOf(cfgM)
	if err != nil {
		t.Fatal(err)
	}
	if km == ki {
		t.Fatal("mutated platform produced the same key as the original")
	}

	// And the two equivalent forms must land on one cache entry.
	r := New(0)
	if _, err := r.Run(context.Background(), implicit); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), explicit); err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("equivalent configs executed %d simulations, want 1", got)
	}
	s := r.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 hit", s)
	}
}

func TestCrossCallerDedup(t *testing.T) {
	// Two caller populations — as the service and the experiments pipeline
	// are in production, both of which go through the shared spine — race
	// the same canonical config; exactly one simulation must execute.
	r := New(0)
	execs := atomic.Int64{}
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := countingConfig("test/dedup", &execs)
			_, errs[i] = r.Run(context.Background(), cfg)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d concurrent callers executed %d simulations, want 1", callers, got)
	}
	s := r.Stats()
	if s.Misses != 1 || s.Hits != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss + %d hits", s, callers-1)
	}
}

func TestUncacheableBypass(t *testing.T) {
	r := New(0)
	execs := atomic.Int64{}

	// No fingerprint: every call executes.
	anon := countingConfig("", &execs)
	for i := 0; i < 2; i++ {
		if _, err := r.Run(context.Background(), anon); err != nil {
			t.Fatal(err)
		}
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("fingerprintless config executed %d times in 2 calls, want 2", got)
	}

	// A hierarchy hook forces bypass even with a fingerprint.
	hooked := countingConfig("test/hooked", &execs)
	hooked.ConfigureHierarchy = func(h *memsys.Hierarchy) { h.NoCoalesce = true }
	if _, _, err := KeyOf(hooked); err != nil {
		t.Fatal(err)
	} else if _, cacheable, _ := KeyOf(hooked); cacheable {
		t.Fatal("config with ConfigureHierarchy reported cacheable")
	}
	before := execs.Load()
	for i := 0; i < 2; i++ {
		if _, err := r.Run(context.Background(), hooked); err != nil {
			t.Fatal(err)
		}
	}
	if got := execs.Load() - before; got != 2 {
		t.Fatalf("hooked config executed %d times in 2 calls, want 2", got)
	}
	if s := r.Stats(); s.Bypasses != 4 {
		t.Fatalf("stats = %+v, want 4 bypasses", s)
	}
	if r.Len() != 0 {
		t.Fatalf("bypassed runs populated the cache: %d entries", r.Len())
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	r := New(0)
	execs := atomic.Int64{}
	bad := countingConfig("test/bad", &execs)
	bad.GapScale = -1
	if _, err := r.Run(context.Background(), bad); err == nil {
		t.Fatal("negative GapScale accepted")
	}
	bad = countingConfig("test/bad", &execs)
	bad.SMTShare = -0.5
	if _, err := r.Run(context.Background(), bad); err == nil {
		t.Fatal("negative SMTShare accepted")
	}
	bad = countingConfig("test/bad", &execs)
	bad.WarmupFrac = -0.1
	if _, err := r.Run(context.Background(), bad); err == nil {
		t.Fatal("negative WarmupFrac accepted")
	}
	if execs.Load() != 0 {
		t.Fatal("invalid configs reached the simulator")
	}
}

func TestDeterminismThroughCache(t *testing.T) {
	// A cold runner and a pooled re-run must produce identical bits: the
	// hierarchy pool warmed by the first run must not leak state into the
	// second (distinct key, so it re-executes on warmed arrays).
	mk := func(fp string) sim.Config {
		var execs atomic.Int64
		return countingConfig(fp, &execs)
	}
	r := New(0)
	a1, err := r.Run(context.Background(), mk("test/det-a"))
	if err != nil {
		t.Fatal(err)
	}
	// Different fingerprint forces re-execution of an identical stream on
	// hierarchies recycled from the first run.
	a2, err := r.Run(context.Background(), mk("test/det-b"))
	if err != nil {
		t.Fatal(err)
	}
	if *a1 != *a2 {
		t.Fatalf("pooled re-run diverged:\n  %+v\n  %+v", *a1, *a2)
	}
}
