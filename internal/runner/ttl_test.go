package runner

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestTTLExpiryRecomputes: with a TTL set, Run drops an expired entry and
// recomputes; without one, the seed behaviour (entries never expire) holds.
func TestTTLExpiryRecomputes(t *testing.T) {
	var execs atomic.Int64
	cfg := countingConfig("test/ttl", &execs)
	r := New(8)
	clock := time.Unix(1_700_000_000, 0)
	r.now = func() time.Time { return clock }

	if _, err := r.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("execs = %d, want 1", got)
	}
	// No TTL: arbitrarily later the entry is still fresh.
	clock = clock.Add(24 * time.Hour)
	if _, err := r.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("execs after no-TTL revisit = %d, want 1 (hit)", got)
	}

	r.SetTTL(time.Minute)
	clock = clock.Add(2 * time.Minute)
	if _, err := r.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("execs after expiry = %d, want 2 (recompute)", got)
	}
	st := r.Stats()
	if st.Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", st.Expirations)
	}
	// Fresh again right after the recompute.
	if _, err := r.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("execs after fresh revisit = %d, want 2", got)
	}
}

// TestRunStaleServesExpired: RunStale hands back an expired entry, marked
// stale, without executing anything; Run on the same key recomputes.
func TestRunStaleServesExpired(t *testing.T) {
	var execs atomic.Int64
	cfg := countingConfig("test/stale", &execs)
	r := New(8)
	clock := time.Unix(1_700_000_000, 0)
	r.now = func() time.Time { return clock }
	r.SetTTL(time.Minute)

	want, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(5 * time.Minute)

	res, stale, err := r.RunStale(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stale {
		t.Fatalf("expired entry not marked stale")
	}
	if res != want {
		t.Fatalf("stale serve returned a different result pointer")
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("execs = %d, want 1 (stale serve must not execute)", got)
	}
	if st := r.Stats(); st.StaleServes != 1 {
		t.Fatalf("StaleServes = %d, want 1", st.StaleServes)
	}

	// A fresh entry serves unmarked.
	if _, err := r.Run(context.Background(), cfg); err != nil { // recomputes
		t.Fatal(err)
	}
	res2, stale2, err := r.RunStale(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stale2 {
		t.Fatalf("fresh entry marked stale")
	}
	if res2 == nil {
		t.Fatalf("nil result from fresh RunStale")
	}
}

// TestRunStaleMissExecutes: with nothing cached, RunStale behaves exactly
// like Run — it executes and the answer is not stale.
func TestRunStaleMissExecutes(t *testing.T) {
	var execs atomic.Int64
	cfg := countingConfig("test/stale-miss", &execs)
	r := New(8)

	res, stale, err := r.RunStale(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stale {
		t.Fatalf("cache miss marked stale")
	}
	if res == nil {
		t.Fatalf("nil result")
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("execs = %d, want 1", got)
	}
}
