// Package counters models the performance-counter facilities of the
// processor vendors the paper surveys (Table I), including exactly the
// limitations that motivate the Little's-Law approach:
//
//   - only bandwidth-related events are available everywhere, and even
//     those differ by vendor (L3-miss counting on x86 vs memory-bus
//     read/write counting on ARM);
//   - x86 L3-miss events exclude writebacks, which must be estimated
//     heuristically;
//   - Intel's latency-threshold load sampling measures dispatch-to-
//     completion (inflated by re-dispatch, TLB walks and page-table
//     walks), and reports nothing useful for prefetched streams (§II);
//   - several vendors expose no memory-latency events at all.
package counters

import (
	"fmt"

	"littleslaw/internal/sim"
)

// Visibility grades how well a vendor exposes a class of events (Table I).
type Visibility int

const (
	No Visibility = iota
	VeryLimited
	Limited
	Yes
)

func (v Visibility) String() string {
	switch v {
	case No:
		return "No"
	case VeryLimited:
		return "Very limited"
	case Limited:
		return "Limited"
	case Yes:
		return "Yes"
	}
	return "?"
}

// VendorModel describes one vendor's counter facilities.
type VendorModel struct {
	Vendor string

	// Table I columns.
	StallBreakdown Visibility
	L1MSHRQFull    Visibility
	L2MSHRQFull    Visibility
	MemoryLatency  Visibility

	// BandwidthEvents names the events used to measure memory bandwidth
	// (empty when the vendor exposes none — the portability failure case).
	BandwidthEvents []string
	// CountsWritebacks reports whether the bandwidth events include
	// writeback traffic directly (ARM) or need the heuristic (x86 L3 miss).
	CountsWritebacks bool
	// LatencyThresholdSampling marks Intel-style loads-above-threshold
	// histograms.
	LatencyThresholdSampling bool
}

// Models returns the vendor survey of Table I plus the concrete per-
// platform bandwidth events from §IV.
func Models() []VendorModel {
	return []VendorModel{
		{
			Vendor:         "Intel",
			StallBreakdown: Limited, L1MSHRQFull: Yes, L2MSHRQFull: No, MemoryLatency: Limited,
			BandwidthEvents:          []string{"OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL"},
			CountsWritebacks:         false,
			LatencyThresholdSampling: true,
		},
		{
			Vendor:         "AMD",
			StallBreakdown: Limited, L1MSHRQFull: Yes, L2MSHRQFull: No, MemoryLatency: Limited,
			BandwidthEvents:  []string{"DRAM_CHANNEL_READS", "DRAM_CHANNEL_WRITES"},
			CountsWritebacks: true,
		},
		{
			Vendor:         "Cavium",
			StallBreakdown: VeryLimited, L1MSHRQFull: No, L2MSHRQFull: No, MemoryLatency: No,
			BandwidthEvents: nil, // no usable memory events: the portability failure
		},
		{
			Vendor:         "Fujitsu",
			StallBreakdown: Limited, L1MSHRQFull: No, L2MSHRQFull: No, MemoryLatency: No,
			BandwidthEvents:  []string{"BUS_READ_TOTAL_MEM", "BUS_WRITE_TOTAL_MEM"},
			CountsWritebacks: true,
		},
	}
}

// ModelFor maps a platform name to its vendor counter model.
func ModelFor(platformName string) (VendorModel, error) {
	vendor := map[string]string{"SKL": "Intel", "KNL": "Intel", "A64FX": "Fujitsu"}[platformName]
	if vendor == "" {
		return VendorModel{}, fmt.Errorf("counters: no vendor model for platform %q", platformName)
	}
	for _, m := range Models() {
		if m.Vendor == vendor {
			if platformName == "KNL" {
				m.BandwidthEvents = []string{
					"OFFCORE_RESPONSE_1:ANY_REQUEST:MCDRAM",
					"OFFCORE_RESPONSE_1:ANY_REQUEST:DDR",
				}
			}
			return m, nil
		}
	}
	return VendorModel{}, fmt.Errorf("counters: unknown vendor %q", vendor)
}

// wbEstimateFactor is the heuristic the paper alludes to for x86: writeback
// traffic estimated from the measured dirty-line behaviour of the L2/L3
// (CrayPat uses information from other counters; we apply the measured
// write/read ratio quantised to the same coarse information a heuristic
// would have).
const wbEstimateFactor = 1.0

// BandwidthGBs derives the observed memory bandwidth from a simulated run
// the way the vendor's counters allow:
//
//   - ARM (A64FX): bus read+write counts → exact total bandwidth;
//   - Intel: L3-miss (read) traffic measured exactly, writebacks estimated
//     heuristically from the run's write ratio;
//   - vendors with no bandwidth events: an error (the Table I problem).
func BandwidthGBs(m VendorModel, res *sim.Result) (float64, error) {
	if len(m.BandwidthEvents) == 0 {
		return 0, fmt.Errorf("counters: %s exposes no memory-bandwidth events", m.Vendor)
	}
	if m.CountsWritebacks {
		return res.ReadGBs + res.WriteGBs, nil
	}
	// L3-miss style events see reads (including page-walk traffic) only.
	return res.ReadGBs + wbEstimateFactor*res.WriteGBs, nil
}

// LatencyBins are Intel's loads-above-threshold bins (§II).
var LatencyBins = []int{4, 8, 16, 32, 64, 128, 256, 512}

// ThresholdSample is the fraction of sampled loads whose counter-reported
// latency exceeds each bin's threshold.
type ThresholdSample struct {
	ThresholdCycles int
	Fraction        float64
}

// ThresholdCounter models Intel's latency-threshold load sampling and its
// documented inaccuracy: the counter measures first-dispatch-to-completion,
// so re-dispatched loads, TLB misses and page-table walks inflate it far
// beyond the memory latency ("Reported latency may be longer than just the
// memory latency"). For random-access runs most samples therefore land in
// the top bin even when the true loaded latency is lower; for prefetched
// streams the counter reports near-hit latencies that say nothing about
// memory (§II's hpcg example).
func ThresholdCounter(m VendorModel, res *sim.Result, plat interface{ NsCycles(float64) float64 }, randomAccess bool) ([]ThresholdSample, error) {
	if !m.LatencyThresholdSampling {
		return nil, fmt.Errorf("counters: %s has no latency-threshold sampling", m.Vendor)
	}
	meanCy := plat.NsCycles(res.MeanLoadLatencyNs)
	// Dispatch-to-completion inflation for irregular access: re-dispatches
	// after mis-speculated memory ordering plus TLB/page walks roughly
	// double the reported value and fatten the tail.
	inflation := 1.0
	tail := 0.15
	if randomAccess {
		inflation = 2.1
		tail = 0.45
	}
	reported := meanCy * inflation
	out := make([]ThresholdSample, len(LatencyBins))
	for i, th := range LatencyBins {
		// A smooth heavy-tailed CDF around the inflated mean: fraction of
		// samples above threshold th.
		f := 1.0 / (1.0 + (float64(th)/reported)*(float64(th)/reported)/(1+tail*4))
		if f > 1 {
			f = 1
		}
		out[i] = ThresholdSample{ThresholdCycles: th, Fraction: f}
	}
	return out, nil
}
