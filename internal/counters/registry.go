package counters

import (
	"fmt"
	"io"
	"sort"

	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

// EventValue is one named counter reading.
type EventValue struct {
	Event string
	Value float64
	Unit  string
}

// ReadEvents derives the vendor's counter readings from a simulated run —
// the numbers a CrayPat-style sampling report would show. Events not
// exposed by the vendor are simply absent, reproducing the Table-I
// portability gaps.
func ReadEvents(m VendorModel, p *platform.Platform, res *sim.Result) []EventValue {
	lineGB := float64(p.LineBytes) / 1e9
	secs := res.WindowPs.Seconds()
	var out []EventValue
	add := func(name string, v float64, unit string) {
		out = append(out, EventValue{Event: name, Value: v, Unit: unit})
	}

	// Universally available basics.
	add("CYCLES", res.WindowPs.Seconds()*p.FreqHz, "cycles")
	add("DEMAND_LOADS", float64(res.DemandLoads), "ops")
	add("DEMAND_STORES", float64(res.DemandStores), "ops")

	// Bandwidth events per vendor.
	for _, ev := range m.BandwidthEvents {
		switch {
		case ev == "BUS_READ_TOTAL_MEM":
			add(ev, res.ReadGBs/lineGB*secs/1e6, "M lines")
		case ev == "BUS_WRITE_TOTAL_MEM":
			add(ev, res.WriteGBs/lineGB*secs/1e6, "M lines")
		default: // Intel OFFCORE_RESPONSE-style read-side events
			add(ev, res.ReadGBs/lineGB*secs/1e6, "M lines")
		}
	}

	// L1-MSHRQ-full stalls: Intel/AMD expose them; others do not.
	if m.L1MSHRQFull == Yes {
		add("L1D_PEND_MISS.FB_FULL", res.L1FullStallFrac*res.WindowPs.Seconds()*p.FreqHz, "cycles")
	}

	// Prefetch activity (commonly visible on x86).
	if m.Vendor == "Intel" {
		add("L2_PREFETCH.REQUESTS", float64(res.HWPrefetchIssued)/1e6, "M ops")
		add("L2_PREFETCH.DROPPED", float64(res.HWPrefetchDropped)/1e6, "M ops")
	}
	return out
}

// WriteReport renders the readings plus the derived metrics the paper's
// method needs, in a CrayPat-like layout.
func WriteReport(w io.Writer, m VendorModel, p *platform.Platform, res *sim.Result) error {
	if _, err := fmt.Fprintf(w, "Counter report (%s events on %s)\n", m.Vendor, p.Name); err != nil {
		return err
	}
	events := ReadEvents(m, p, res)
	sort.Slice(events, func(i, j int) bool { return events[i].Event < events[j].Event })
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "  %-42s %14.2f %s\n", e.Event, e.Value, e.Unit); err != nil {
			return err
		}
	}
	bw, err := BandwidthGBs(m, res)
	if err != nil {
		_, werr := fmt.Fprintf(w, "  derived bandwidth: unavailable (%v)\n", err)
		return werr
	}
	_, err = fmt.Fprintf(w, "  derived bandwidth: %.1f GB/s (%.0f%% of %s peak)\n",
		bw, 100*bw/p.PeakGBs(), p.Name)
	return err
}
