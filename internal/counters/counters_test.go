package counters

import (
	"strings"
	"testing"

	"littleslaw/internal/platform"
	"littleslaw/internal/sim"
)

func TestTableIMatrix(t *testing.T) {
	models := Models()
	if len(models) != 4 {
		t.Fatalf("Table I surveys 4 vendors, got %d", len(models))
	}
	byVendor := map[string]VendorModel{}
	for _, m := range models {
		byVendor[m.Vendor] = m
	}
	// Table I rows.
	cases := []struct {
		vendor                       string
		stalls, l1full, l2full, mlat Visibility
	}{
		{"Intel", Limited, Yes, No, Limited},
		{"AMD", Limited, Yes, No, Limited},
		{"Cavium", VeryLimited, No, No, No},
		{"Fujitsu", Limited, No, No, No},
	}
	for _, c := range cases {
		m, ok := byVendor[c.vendor]
		if !ok {
			t.Fatalf("vendor %s missing", c.vendor)
		}
		if m.StallBreakdown != c.stalls || m.L1MSHRQFull != c.l1full ||
			m.L2MSHRQFull != c.l2full || m.MemoryLatency != c.mlat {
			t.Errorf("%s row = %v/%v/%v/%v, want %v/%v/%v/%v", c.vendor,
				m.StallBreakdown, m.L1MSHRQFull, m.L2MSHRQFull, m.MemoryLatency,
				c.stalls, c.l1full, c.l2full, c.mlat)
		}
	}
	// No vendor exposes L2-MSHRQ-full stalls — the gap the metric fills.
	for _, m := range models {
		if m.L2MSHRQFull != No {
			t.Errorf("%s claims L2 MSHRQ-full visibility; Table I says none do", m.Vendor)
		}
	}
}

func TestModelForPlatforms(t *testing.T) {
	for _, c := range []struct {
		plat, vendor string
		eventSub     string
	}{
		{"SKL", "Intel", "L3_MISS_LOCAL"},
		{"KNL", "Intel", "MCDRAM"},
		{"A64FX", "Fujitsu", "BUS_READ_TOTAL_MEM"},
	} {
		m, err := ModelFor(c.plat)
		if err != nil {
			t.Fatalf("ModelFor(%s): %v", c.plat, err)
		}
		if m.Vendor != c.vendor {
			t.Errorf("%s vendor = %s, want %s", c.plat, m.Vendor, c.vendor)
		}
		found := false
		for _, e := range m.BandwidthEvents {
			if strings.Contains(e, c.eventSub) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s events %v missing %q", c.plat, m.BandwidthEvents, c.eventSub)
		}
	}
	if _, err := ModelFor("POWER9"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestBandwidthDerivation(t *testing.T) {
	res := &sim.Result{ReadGBs: 80, WriteGBs: 20}
	arm, _ := ModelFor("A64FX")
	bw, err := BandwidthGBs(arm, res)
	if err != nil || bw != 100 {
		t.Fatalf("ARM bandwidth = %v (%v), want 100 exact", bw, err)
	}
	intel, _ := ModelFor("SKL")
	bw, err = BandwidthGBs(intel, res)
	if err != nil {
		t.Fatal(err)
	}
	if bw < 80 || bw > 105 {
		t.Fatalf("Intel bandwidth with writeback heuristic = %v, want ~100", bw)
	}
	// Cavium-like: no events at all.
	var cavium VendorModel
	for _, m := range Models() {
		if m.Vendor == "Cavium" {
			cavium = m
		}
	}
	if _, err := BandwidthGBs(cavium, res); err == nil {
		t.Fatal("vendor without bandwidth events produced a bandwidth")
	}
}

// TestThresholdCounterCritique reproduces §II: for a random-access run with
// a true loaded latency of ~378 cycles, the threshold counter reports the
// majority of loads above the 512-cycle bin — more than the true latency
// justifies — while for a prefetched streaming run it reports almost
// everything as fast even at full memory load.
func TestThresholdCounterCritique(t *testing.T) {
	p := platform.SKL()
	intel, _ := ModelFor("SKL")

	// ISx-like: true mean load-to-use ≈ 180ns = 378 cycles.
	random := &sim.Result{MeanLoadLatencyNs: 180}
	bins, err := ThresholdCounter(intel, random, p, true)
	if err != nil {
		t.Fatal(err)
	}
	top := bins[len(bins)-1]
	if top.ThresholdCycles != 512 {
		t.Fatalf("top bin = %d, want 512", top.ThresholdCycles)
	}
	if top.Fraction < 0.55 {
		t.Errorf("random access: %.0f%% of loads above 512cy, want a misleading majority (paper: 75%%)",
			100*top.Fraction)
	}

	// hpcg-like: prefetched streams complete near cache latency (~15ns =
	// 32 cycles) even though the machine runs at peak bandwidth.
	stream := &sim.Result{MeanLoadLatencyNs: 15}
	bins, err = ThresholdCounter(intel, stream, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if f := bins[len(bins)-1].Fraction; f > 0.05 {
		t.Errorf("prefetched stream: %.0f%% above 512cy, want ~none (counter blind to loaded latency)", 100*f)
	}

	// Monotone: higher thresholds cannot have larger fractions.
	for i := 1; i < len(bins); i++ {
		if bins[i].Fraction > bins[i-1].Fraction {
			t.Fatalf("bin fractions not monotone: %+v", bins)
		}
	}

	// ARM has no such counter at all.
	arm, _ := ModelFor("A64FX")
	if _, err := ThresholdCounter(arm, random, p, true); err == nil {
		t.Fatal("A64FX produced threshold samples; Table I says it cannot")
	}
}

func TestVisibilityString(t *testing.T) {
	for v, want := range map[Visibility]string{No: "No", VeryLimited: "Very limited", Limited: "Limited", Yes: "Yes"} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func makeResult() *sim.Result {
	return &sim.Result{
		WindowPs:          1e9, // 1 ms
		ReadGBs:           80,
		WriteGBs:          20,
		DemandLoads:       1e6,
		DemandStores:      2e5,
		L1FullStallFrac:   0.3,
		HWPrefetchIssued:  5e5,
		HWPrefetchDropped: 1e4,
	}
}

func TestReadEventsPerVendor(t *testing.T) {
	res := makeResult()
	intel, _ := ModelFor("SKL")
	arm, _ := ModelFor("A64FX")
	p := platform.SKL()
	a64 := platform.A64FX()

	names := func(evs []EventValue) map[string]bool {
		m := map[string]bool{}
		for _, e := range evs {
			m[e.Event] = true
		}
		return m
	}

	iv := names(ReadEvents(intel, p, res))
	if !iv["OFFCORE_RESPONSE_0:ANY_REQUEST:L3_MISS_LOCAL"] {
		t.Error("Intel missing its L3-miss event")
	}
	if !iv["L1D_PEND_MISS.FB_FULL"] {
		t.Error("Intel missing the fill-buffer-full event (Table I: Yes)")
	}
	if iv["BUS_READ_TOTAL_MEM"] {
		t.Error("Intel shows an ARM bus event")
	}

	av := names(ReadEvents(arm, a64, res))
	if !av["BUS_READ_TOTAL_MEM"] || !av["BUS_WRITE_TOTAL_MEM"] {
		t.Error("A64FX missing its bus events")
	}
	if av["L1D_PEND_MISS.FB_FULL"] {
		t.Error("A64FX shows an MSHR-full event (Table I: No)")
	}
}

func TestWriteReport(t *testing.T) {
	var sb strings.Builder
	intel, _ := ModelFor("SKL")
	if err := WriteReport(&sb, intel, platform.SKL(), makeResult()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Counter report", "CYCLES", "derived bandwidth", "GB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// A vendor with no bandwidth events reports the gap instead of a number.
	var cavium VendorModel
	for _, m := range Models() {
		if m.Vendor == "Cavium" {
			cavium = m
		}
	}
	sb.Reset()
	if err := WriteReport(&sb, cavium, platform.SKL(), makeResult()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "unavailable") {
		t.Errorf("Cavium report should mark bandwidth unavailable:\n%s", sb.String())
	}
}
