// Package debugmux is the admin/profiling side-channel for the server
// binaries: a net/http/pprof mux on its own listener, so CPU and heap
// profiles can be correlated with the wall-clock waterfalls the trace
// layer records (a stage with high service time but no queue wait is a
// CPU problem — the profile says where; high queue wait is a capacity
// problem — the trace says which resource).
//
// The listener is a separate server on purpose: profiles must never share
// a port with the data plane (pprof handlers are unauthenticated and can
// run for 30s+), and the default address is loopback so enabling the flag
// does not expose them off-host.
package debugmux

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DefaultAddr is the loopback address the -pprof flag documents.
const DefaultAddr = "127.0.0.1:6060"

// Handler returns a mux with the net/http/pprof suite mounted at
// /debug/pprof/, the same layout the pprof tool expects.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr ("" = DefaultAddr) and serves the pprof mux on it in a
// background goroutine. It returns the bound address (useful with ":0")
// and a closer that stops the listener. No WriteTimeout: a 30s CPU
// profile is a legitimately slow response.
func Serve(addr string) (string, func() error, error) {
	if addr == "" {
		addr = DefaultAddr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
