GO ?= go

# Packages whose tests exercise the concurrent engine; the -race job keeps
# the determinism/race-cleanliness guarantees honest without paying for a
# race-instrumented full-scale table regeneration (the experiments and
# autotune packages only race-run their determinism tests for that reason).
RACE_PKGS = ./internal/engine/ ./internal/sim/ ./internal/xmem/

.PHONY: all vet build test race bench check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short $(RACE_PKGS)
	$(GO) test -race -run 'Determin' ./internal/experiments/ ./internal/autotune/

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# check is the tier-1 gate plus the race job.
check: vet build test race
