GO ?= go

# Packages whose tests exercise the concurrent engine; the -race job keeps
# the determinism/race-cleanliness guarantees honest without paying for a
# race-instrumented full-scale table regeneration (the experiments and
# autotune packages only race-run their determinism tests for that reason).
RACE_PKGS = ./internal/engine/ ./internal/sim/ ./internal/xmem/ ./internal/service/ ./internal/stream/

# Fuzz targets get a short deterministic smoke in CI; run them longer by hand
# with, e.g., go test ./internal/tracefile -fuzz FuzzParse -fuzztime 5m.
FUZZTIME ?= 10s

.PHONY: all vet build test race bench bench-stream fuzz lint check

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short $(RACE_PKGS)
	$(GO) test -race -run 'Determin' ./internal/experiments/ ./internal/autotune/

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench-stream exercises the monitor hot paths (window push, broker
# fan-out at 1/8/64 subscribers) with real iteration counts.
bench-stream:
	$(GO) test -run 'Allocs' -bench 'BenchmarkWindowPush|BenchmarkFanout' ./internal/stream/

# lint runs the static analyzers CI runs; both tools are optional locally
# (install with go install honnef.co/go/tools/cmd/staticcheck@latest and
# go install golang.org/x/vuln/cmd/govulncheck@latest).
lint:
	@command -v staticcheck >/dev/null && staticcheck ./... || echo "staticcheck not installed; skipping"
	@command -v govulncheck >/dev/null && govulncheck ./... || echo "govulncheck not installed; skipping"

fuzz:
	$(GO) test ./internal/tracefile/ -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/service/ -run '^$$' -fuzz FuzzDecodeRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/service/ -run '^$$' -fuzz FuzzNormalizeTableID -fuzztime $(FUZZTIME)

# check is the tier-1 gate plus the race job.
check: vet build test race
