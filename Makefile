GO ?= go

# Packages whose tests exercise the concurrent engine; the -race job keeps
# the determinism/race-cleanliness guarantees honest without paying for a
# race-instrumented full-scale table regeneration (the experiments and
# autotune packages only race-run their determinism tests for that reason).
RACE_PKGS = ./internal/engine/ ./internal/runner/ ./internal/sim/ ./internal/xmem/ ./internal/service/ ./internal/stream/ ./internal/limit/ ./internal/loadgen/ ./internal/faults/ ./internal/client/ ./internal/cluster/ ./internal/trace/ ./internal/brownout/

# Fuzz targets get a short deterministic smoke in CI; run them longer by hand
# with, e.g., go test ./internal/tracefile -fuzz FuzzParse -fuzztime 5m.
FUZZTIME ?= 10s

.PHONY: all vet build test race test-chaos bench bench-stream bench-json fuzz lint check loadtest cluster-demo trace-demo brownout-demo

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short $(RACE_PKGS)
	$(GO) test -race -run 'Determin' ./internal/experiments/ ./internal/autotune/

# test-chaos drives llserved's full handler stack under a fixed-seed fault
# storm (injected latency/errors/panics at every site) with the resilient
# client, under the race detector: every request must eventually succeed,
# every limiter slot must come back, and no goroutine may leak. The panic
# regressions ride along because a leaked slot is the chaos failure mode.
# CHAOS_COUNT > 1 turns this into a soak (see .github/workflows/soak.yml).
CHAOS_COUNT ?= 1
test-chaos:
	$(GO) test -race -count $(CHAOS_COUNT) -timeout 15m \
		-run 'TestChaos|TestFaultsDisabledIsNoOp|TestHandlerPanic' \
		./internal/service/ ./internal/limit/ ./internal/cluster/ ./internal/brownout/

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench-stream exercises the monitor hot paths (window push, broker
# fan-out at 1/8/64 subscribers) with real iteration counts.
bench-stream:
	$(GO) test -run 'Allocs' -bench 'BenchmarkWindowPush|BenchmarkFanout' ./internal/stream/

# bench-json runs the macro simulation benchmark and renders it as JSON so
# PRs can commit a perf trajectory (BENCH_baseline.json) and diff against
# it. Usage: make bench-json > BENCH_current.json
BENCH_COUNT ?= 3
bench-json:
	@$(GO) test -run '^$$' -bench BenchmarkRun -benchmem -benchtime 10x -count $(BENCH_COUNT) ./internal/sim/ \
	| awk 'BEGIN { print "[" } \
	  /^BenchmarkRun\// { \
	    split($$1, parts, "/"); sub(/-[0-9]+$$/, "", parts[2]); \
	    if (n++) printf ",\n"; \
	    printf "  {\"bench\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
	      parts[2], $$2, $$3, $$5, $$7 } \
	  END { print "\n]" }'

# lint runs the static analyzers CI runs; both tools are optional locally
# (install with go install honnef.co/go/tools/cmd/staticcheck@latest and
# go install golang.org/x/vuln/cmd/govulncheck@latest).
lint:
	@command -v staticcheck >/dev/null && staticcheck ./... || echo "staticcheck not installed; skipping"
	@command -v govulncheck >/dev/null && govulncheck ./... || echo "govulncheck not installed; skipping"

fuzz:
	$(GO) test ./internal/tracefile/ -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/service/ -run '^$$' -fuzz FuzzDecodeRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/service/ -run '^$$' -fuzz FuzzNormalizeTableID -fuzztime $(FUZZTIME)

# loadtest demonstrates the admission controller end to end: llserved with a
# deliberately small ceiling is driven open-loop at LOADTEST_RATE req/s with a
# simulated-workload analyze (~45ms each, so ceiling 4 caps capacity near
# 90/s), so the summary should show 429 sheds with Retry-After hints alongside
# admitted requests that stay fast. The server is built (not `go run`) so the
# kill lands on the real process.
LOADTEST_ADDR ?= 127.0.0.1:8137
LOADTEST_RATE ?= 400
LOADTEST_DURATION ?= 5s

loadtest:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/ ./cmd/llserved ./cmd/llload || { rm -rf $$tmp; exit 1; }; \
	$$tmp/llserved -addr $(LOADTEST_ADDR) -paper-profiles -limit-ceiling 4 -limit-queue 8 -limit-queue-timeout 50ms & \
	srv=$$!; trap 'kill $$srv 2>/dev/null; wait $$srv 2>/dev/null; rm -rf '"$$tmp" EXIT; \
	sleep 1; \
	$$tmp/llload -url http://$(LOADTEST_ADDR)/v1/analyze -mode open \
		-rate $(LOADTEST_RATE) -duration $(LOADTEST_DURATION) \
		-body '{"platform":"SKL","workload":"ISx","scale":0.02}'; \
	code=$$?; \
	curl -sf http://$(LOADTEST_ADDR)/metrics | grep '^llserved_limiter' || true; \
	exit $$code

# cluster-demo boots the scale-out tier end to end: three llserved backends
# behind llproxy, driven closed-loop through the proxy (one analysis identity,
# so affinity pins it all to its ring owner — visible in the per-backend
# metrics), then a direct multi-target round-robin pass for contrast, and
# finally the proxy's per-backend view from /metrics. Like loadtest, binaries
# are real builds so the kills land on real processes.
CLUSTER_PORT ?= 8140
CLUSTER_DURATION ?= 5s

cluster-demo:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/ ./cmd/llserved ./cmd/llproxy ./cmd/llload || { rm -rf $$tmp; exit 1; }; \
	pids=""; \
	for i in 1 2 3; do \
		$$tmp/llserved -addr 127.0.0.1:$$(( $(CLUSTER_PORT) + i )) -paper-profiles & \
		pids="$$pids $$!"; \
	done; \
	$$tmp/llproxy -addr 127.0.0.1:$(CLUSTER_PORT) \
		-backends http://127.0.0.1:$$(( $(CLUSTER_PORT) + 1 )),http://127.0.0.1:$$(( $(CLUSTER_PORT) + 2 )),http://127.0.0.1:$$(( $(CLUSTER_PORT) + 3 )) & \
	pids="$$pids $$!"; \
	trap 'kill '"$$pids"' 2>/dev/null; wait '"$$pids"' 2>/dev/null; rm -rf '"$$tmp" EXIT; \
	sleep 1; \
	echo "== through llproxy (affinity routing) =="; \
	$$tmp/llload -url http://127.0.0.1:$(CLUSTER_PORT)/v1/analyze -c 8 -duration $(CLUSTER_DURATION) \
		-body '{"platform":"KNL","workload":"ISx","scale":0.02}'; \
	code=$$?; \
	echo "== direct to the fleet (llload -targets round-robin) =="; \
	$$tmp/llload -targets http://127.0.0.1:$$(( $(CLUSTER_PORT) + 1 ))/v1/analyze,http://127.0.0.1:$$(( $(CLUSTER_PORT) + 2 ))/v1/analyze,http://127.0.0.1:$$(( $(CLUSTER_PORT) + 3 ))/v1/analyze \
		-c 8 -duration $(CLUSTER_DURATION) -body '{"platform":"KNL","workload":"ISx","scale":0.02}'; \
	echo "== llproxy per-backend view =="; \
	curl -sf http://127.0.0.1:$(CLUSTER_PORT)/metrics | grep -E '^llproxy_(backend|requests|affinity|hedges|failovers)' || true; \
	exit $$code

# brownout-demo pushes llserved past its ceiling hard enough to climb the
# brownout ladder: a deliberately small ceiling, a short runner TTL (so
# expired cache entries exist for B1 stale serving), and a 4x-capacity
# open-loop drive. The llload summary splits goodput into full-fidelity vs
# degraded (stale/analytic) answers, and the controller's own view — rung,
# transitions, time-in-mode — comes from /v1/brownout and /metrics.
BROWNOUT_ADDR ?= 127.0.0.1:8142
BROWNOUT_RATE ?= 400
BROWNOUT_DURATION ?= 6s

brownout-demo:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/ ./cmd/llserved ./cmd/llload || { rm -rf $$tmp; exit 1; }; \
	$$tmp/llserved -addr $(BROWNOUT_ADDR) -paper-profiles -limit-ceiling 4 -limit-queue 8 \
		-limit-queue-timeout 50ms -runner-ttl 250ms & \
	srv=$$!; trap 'kill $$srv 2>/dev/null; wait $$srv 2>/dev/null; rm -rf '"$$tmp" EXIT; \
	sleep 1; \
	$$tmp/llload -url http://$(BROWNOUT_ADDR)/v1/analyze -mode open \
		-rate $(BROWNOUT_RATE) -duration $(BROWNOUT_DURATION) -retries 2 \
		-body '{"platform":"SKL","workload":"ISx","scale":0.02}'; \
	code=$$?; \
	echo "== GET /v1/brownout =="; \
	curl -sf http://$(BROWNOUT_ADDR)/v1/brownout; echo; \
	echo "== brownout controller metrics =="; \
	curl -sf http://$(BROWNOUT_ADDR)/metrics | grep '^llserved_brownout' || true; \
	exit $$code

# trace-demo shows the per-request latency decomposition end to end: boot
# llserved, drive it briefly with llload (same analysis identity, so the
# slowest request is the cache-miss that paid the sim kernel), then fetch
# that request's waterfall from /v1/trace/{id} and the per-stage
# Little's-Law metrics the trace sink derives.
TRACE_ADDR ?= 127.0.0.1:8141
TRACE_DURATION ?= 3s

trace-demo:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/ ./cmd/llserved ./cmd/llload || { rm -rf $$tmp; exit 1; }; \
	$$tmp/llserved -addr $(TRACE_ADDR) -paper-profiles -trace-capacity 1024 & \
	srv=$$!; trap 'kill $$srv 2>/dev/null; wait $$srv 2>/dev/null; rm -rf '"$$tmp" EXIT; \
	sleep 1; \
	$$tmp/llload -url http://$(TRACE_ADDR)/v1/analyze -c 4 -n 1000 -duration $(TRACE_DURATION) \
		-body '{"platform":"SKL","workload":"ISx","scale":0.02}' | tee $$tmp/out; \
	id=$$(sed -n 's/.*slowest request \([0-9a-f]*\) .*/\1/p' $$tmp/out); \
	[ -n "$$id" ] || { echo "trace-demo: no trace id captured"; exit 1; }; \
	echo "== GET /v1/trace/$$id =="; \
	curl -sf http://$(TRACE_ADDR)/v1/trace/$$id; \
	echo "== per-stage Little's Law =="; \
	curl -sf http://$(TRACE_ADDR)/metrics | grep '^llserved_trace_stage' || true

# check is the tier-1 gate plus the race and chaos jobs.
check: vet build test race test-chaos
