GO ?= go

# Packages whose tests exercise the concurrent engine; the -race job keeps
# the determinism/race-cleanliness guarantees honest without paying for a
# race-instrumented full-scale table regeneration (the experiments and
# autotune packages only race-run their determinism tests for that reason).
RACE_PKGS = ./internal/engine/ ./internal/runner/ ./internal/sim/ ./internal/xmem/ ./internal/service/ ./internal/stream/ ./internal/limit/ ./internal/loadgen/ ./internal/faults/ ./internal/client/

# Fuzz targets get a short deterministic smoke in CI; run them longer by hand
# with, e.g., go test ./internal/tracefile -fuzz FuzzParse -fuzztime 5m.
FUZZTIME ?= 10s

.PHONY: all vet build test race test-chaos bench bench-stream bench-json fuzz lint check loadtest

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short $(RACE_PKGS)
	$(GO) test -race -run 'Determin' ./internal/experiments/ ./internal/autotune/

# test-chaos drives llserved's full handler stack under a fixed-seed fault
# storm (injected latency/errors/panics at every site) with the resilient
# client, under the race detector: every request must eventually succeed,
# every limiter slot must come back, and no goroutine may leak. The panic
# regressions ride along because a leaked slot is the chaos failure mode.
# CHAOS_COUNT > 1 turns this into a soak (see .github/workflows/soak.yml).
CHAOS_COUNT ?= 1
test-chaos:
	$(GO) test -race -count $(CHAOS_COUNT) -timeout 15m \
		-run 'TestChaos|TestFaultsDisabledIsNoOp|TestHandlerPanic' \
		./internal/service/ ./internal/limit/

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench-stream exercises the monitor hot paths (window push, broker
# fan-out at 1/8/64 subscribers) with real iteration counts.
bench-stream:
	$(GO) test -run 'Allocs' -bench 'BenchmarkWindowPush|BenchmarkFanout' ./internal/stream/

# bench-json runs the macro simulation benchmark and renders it as JSON so
# PRs can commit a perf trajectory (BENCH_baseline.json) and diff against
# it. Usage: make bench-json > BENCH_current.json
BENCH_COUNT ?= 3
bench-json:
	@$(GO) test -run '^$$' -bench BenchmarkRun -benchmem -benchtime 10x -count $(BENCH_COUNT) ./internal/sim/ \
	| awk 'BEGIN { print "[" } \
	  /^BenchmarkRun\// { \
	    split($$1, parts, "/"); sub(/-[0-9]+$$/, "", parts[2]); \
	    if (n++) printf ",\n"; \
	    printf "  {\"bench\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
	      parts[2], $$2, $$3, $$5, $$7 } \
	  END { print "\n]" }'

# lint runs the static analyzers CI runs; both tools are optional locally
# (install with go install honnef.co/go/tools/cmd/staticcheck@latest and
# go install golang.org/x/vuln/cmd/govulncheck@latest).
lint:
	@command -v staticcheck >/dev/null && staticcheck ./... || echo "staticcheck not installed; skipping"
	@command -v govulncheck >/dev/null && govulncheck ./... || echo "govulncheck not installed; skipping"

fuzz:
	$(GO) test ./internal/tracefile/ -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/service/ -run '^$$' -fuzz FuzzDecodeRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/service/ -run '^$$' -fuzz FuzzNormalizeTableID -fuzztime $(FUZZTIME)

# loadtest demonstrates the admission controller end to end: llserved with a
# deliberately small ceiling is driven open-loop at LOADTEST_RATE req/s with a
# simulated-workload analyze (~45ms each, so ceiling 4 caps capacity near
# 90/s), so the summary should show 429 sheds with Retry-After hints alongside
# admitted requests that stay fast. The server is built (not `go run`) so the
# kill lands on the real process.
LOADTEST_ADDR ?= 127.0.0.1:8137
LOADTEST_RATE ?= 400
LOADTEST_DURATION ?= 5s

loadtest:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/ ./cmd/llserved ./cmd/llload || { rm -rf $$tmp; exit 1; }; \
	$$tmp/llserved -addr $(LOADTEST_ADDR) -paper-profiles -limit-ceiling 4 -limit-queue 8 -limit-queue-timeout 50ms & \
	srv=$$!; trap 'kill $$srv 2>/dev/null; wait $$srv 2>/dev/null; rm -rf '"$$tmp" EXIT; \
	sleep 1; \
	$$tmp/llload -url http://$(LOADTEST_ADDR)/v1/analyze -mode open \
		-rate $(LOADTEST_RATE) -duration $(LOADTEST_DURATION) \
		-body '{"platform":"SKL","workload":"ISx","scale":0.02}'; \
	code=$$?; \
	curl -sf http://$(LOADTEST_ADDR)/metrics | grep '^llserved_limiter' || true; \
	exit $$code

# check is the tier-1 gate plus the race and chaos jobs.
check: vet build test race test-chaos
