// dgemm_flopbound walks the §III-C/§III-D worked example the paper
// sketches around GEMM: a kernel whose recipe-guided ladder runs through
// the two traffic-reducing optimizations — cache tiling, then
// unroll-and-jam (register tiling) — until the MSHR occupancy is so low
// that the metric itself says "memory is not your problem": the routine
// has become FLOP-bound, visible on the roofline.
package main

import (
	"fmt"
	"log"

	"littleslaw"
	"littleslaw/internal/core"
	"littleslaw/internal/roofline"
)

func main() {
	skl, err := littleslaw.Platform("SKL")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("characterizing SKL...")
	profile, err := littleslaw.Characterize(skl)
	if err != nil {
		log.Fatal(err)
	}
	dgemm, err := littleslaw.Workload("DGEMM")
	if err != nil {
		log.Fatal(err)
	}

	peak := roofline.PeakGFLOPs(skl)
	steps := []struct {
		label string
		v     littleslaw.Variant
	}{
		{"naive", littleslaw.Variant{}},
		{"+ cache tiling", littleslaw.Variant{Tiled: true}},
		{"+ unroll-and-jam", littleslaw.Variant{Tiled: true, UnrollJam: true}},
	}

	var prev float64
	for _, st := range steps {
		w := dgemm.WithVariant(st.v)
		res, err := littleslaw.Run(w, skl, 1, 0.3)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := littleslaw.Analyze(skl, profile, littleslaw.MeasurementFrom(w, res))
		if err != nil {
			log.Fatal(err)
		}
		gflops := res.Throughput / 1e9
		fmt.Printf("\n== %s\n", st.label)
		if prev > 0 {
			fmt.Printf("   speedup: %.2fx\n", res.Throughput/prev)
		}
		fmt.Printf("   %.0f GFLOP/s (%.0f%% of the %.0f GFLOP/s roof), %.1f GB/s, n_avg %.2f of %d %s MSHRs\n",
			gflops, 100*gflops/peak, peak, rep.BandwidthGBs, rep.Occupancy,
			rep.LimiterCapacity, rep.Limiter)
		adv := littleslaw.Advise(rep, w.Capabilities(skl, 1))
		if a := core.AdviceFor(adv, core.UnrollAndJam); a.Stance == littleslaw.Recommend {
			fmt.Printf("   recipe: %s — %s\n", a.Opt, a.Reason)
		}
		if rep.ComputeBound() {
			fmt.Println("   recipe: occupancy and bandwidth both low → compute bound; memory optimizations are done (§IV-G)")
		}
		prev = res.Throughput
	}
}
