// Quickstart: the paper's method in five steps — characterize the machine
// once, run a routine loaded, read bandwidth, apply Little's Law, follow
// the recipe.
package main

import (
	"fmt"
	"log"

	"littleslaw"
)

func main() {
	// 1. Pick a machine (Table III).
	knl, err := littleslaw.Platform("KNL")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Measure its bandwidth→latency profile once (X-Mem, footnote 2).
	fmt.Println("characterizing KNL (once per platform)...")
	profile, err := littleslaw.Characterize(knl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  idle latency %.0f ns, achievable peak %.0f GB/s (theoretical %.0f)\n\n",
		profile.IdleLatencyNs(), profile.MaxBandwidthGBs(), knl.PeakGBs())

	// 3. Run the routine under analysis on the loaded node (Table II's ISx).
	isx, err := littleslaw.Workload("ISx")
	if err != nil {
		log.Fatal(err)
	}
	res, err := littleslaw.Run(isx, knl, 1, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ISx/count_local_keys: %.1f GB/s observed\n", res.TotalGBs)

	// 4. The metric: Equation 2 turns bandwidth + looked-up latency into
	// the average MSHR-queue occupancy.
	report, err := littleslaw.Analyze(knl, profile, littleslaw.MeasurementFrom(isx, res))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(littleslaw.Explain(report))

	// 5. The recipe (Figure 1): which optimizations are worth trying.
	fmt.Println("recipe verdicts:")
	for _, a := range littleslaw.Advise(report, isx.Capabilities(knl, 1)) {
		fmt.Printf("  %-24s %-10s %s\n", a.Opt, a.Stance, a.Reason)
	}
}
