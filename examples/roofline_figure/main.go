// roofline_figure emits the data behind the paper's Figure 2 as CSV: the
// KNL roofline series (DRAM roof, L2-MSHR and L1-MSHR ceilings, peak
// GFLOP/s) plus the baseline (O) and optimized (O1) ISx points. Pipe the
// output into any plotting tool.
package main

import (
	"log"
	"os"

	"littleslaw/internal/experiments"
)

func main() {
	r := experiments.NewRunner(experiments.Options{Scale: 0.2})
	m, err := r.Figure2()
	if err != nil {
		log.Fatal(err)
	}
	if err := m.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
