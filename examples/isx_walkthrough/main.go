// isx_walkthrough replays the paper's §IV-A case study: the full ISx
// optimization ladder on Knights Landing, with the metric consulted before
// every step and the measured speedup after it — ending at the Figure-2
// insight that the L1 MSHR file is a roofline ceiling of its own, broken
// only by moving the in-flight window to the L2 file.
package main

import (
	"fmt"
	"log"

	"littleslaw"
	"littleslaw/internal/core"
)

const scale = 0.2

type step struct {
	label   string
	variant littleslaw.Variant
	threads int
	next    string
	nextOpt core.Optimization
}

func main() {
	knl, err := littleslaw.Platform("KNL")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("characterizing KNL...")
	profile, err := littleslaw.Characterize(knl)
	if err != nil {
		log.Fatal(err)
	}
	isx, err := littleslaw.Workload("ISx")
	if err != nil {
		log.Fatal(err)
	}

	vect := littleslaw.Variant{Vectorized: true}
	vectPref := littleslaw.Variant{Vectorized: true, SWPrefetchL2: true}
	ladder := []step{
		{"base", littleslaw.Variant{}, 1, "vectorize", core.Vectorize},
		{"+vect", vect, 1, "2-way SMT", core.SMT2},
		{"+vect,2ht", vect, 2, "L2 software prefetch", core.SoftwarePrefetchL2},
		{"+vect,2ht,l2pref", vectPref, 2, "", 0},
	}

	var prev *littleslaw.RunResult
	for _, st := range ladder {
		w := isx.WithVariant(st.variant)
		res, err := littleslaw.Run(w, knl, st.threads, scale)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := littleslaw.Analyze(knl, profile, littleslaw.MeasurementFrom(w, res))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s\n", st.label)
		if prev != nil {
			fmt.Printf("   speedup over previous step: %.2fx\n", res.Throughput/prev.Throughput)
		}
		fmt.Printf("   %s\n", rep)
		if st.next != "" {
			a := core.AdviceFor(littleslaw.Advise(rep, w.Capabilities(knl, st.threads)), st.nextOpt)
			fmt.Printf("   recipe on %s: %s — %s\n", st.next, a.Stance, a.Reason)
		}
		prev = res
	}

	// The Figure-2 view: the baseline sat under an invisible ceiling.
	fmt.Println("\n== Figure 2: the MSHR ceiling")
	m, err := littleslaw.Roofline(knl, profile)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range m.Ceilings {
		fmt.Printf("   roof %-12s %7.1f GB/s\n", c.Name, c.BandwidthGBs)
	}
	fmt.Println("   the base run presses against the L1-MSHR roof; the classic")
	fmt.Println("   roofline (DRAM peak only) would wrongly promise SMT headroom.")
}
