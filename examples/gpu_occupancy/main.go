// gpu_occupancy implements the paper's §IV-H future-work sketch: applying
// the MSHR-occupancy metric to a GPU-like device. Resident warps take the
// role SMT threads play on CPUs — each adds independent misses into the
// SM's shared MSHR file — so sweeping the warp count traces occupancy from
// "launch more blocks" territory up to the MSHR ceiling, where the recipe
// flips to occupancy-reducing advice (shared memory, the GPU's tiling).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"littleslaw/internal/core"
	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/runner"
	"littleslaw/internal/sim"
	"littleslaw/internal/xmem"
)

func main() {
	gpu := platform.GPU()

	fmt.Println("characterizing the GPU-like device (once)...")
	profile, err := xmem.Characterize(gpu, xmem.Options{ProbeOps: 150, WarmupOps: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  idle latency %.0f ns, achievable %.0f GB/s of %.0f theoretical\n\n",
		profile.IdleLatencyNs(), profile.MaxBandwidthGBs(), gpu.PeakGBs())

	fmt.Println("sweeping resident warps per SM on a memory-divergent kernel:")
	fmt.Printf("%8s %12s %10s %10s %s\n", "warps", "BW GB/s", "n_avg", "of MSHRs", "recipe reading")

	for _, warps := range []int{1, 2, 4, 8, 16, 32} {
		res, err := runner.Run(context.Background(), kernel(gpu, warps))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := core.Analyze(gpu, profile, core.Measurement{
			Routine:                "divergent_gather",
			BandwidthGBs:           res.TotalGBs,
			ActiveCores:            res.Cores,
			ThreadsPerCore:         warps,
			PrefetchedReadFraction: res.PrefetchedReadFraction,
			RandomAccess:           true,
		})
		if err != nil {
			log.Fatal(err)
		}
		reading := "launch more blocks/warps (occupancy headroom)"
		if rep.OccupancySaturated() {
			reading = "MSHRQ full: use shared memory / reduce per-warp traffic"
		} else if rep.BandwidthSaturated() {
			reading = "at the bandwidth roof: reduce traffic"
		}
		fmt.Printf("%8d %12.1f %10.2f %7.0f%% %s\n",
			warps, res.TotalGBs, rep.Occupancy,
			100*rep.Occupancy/float64(rep.LimiterCapacity), reading)
	}

	fmt.Println("\nthe same Little's-Law pipeline — counters → profile → Equation 2 —")
	fmt.Println("prices GPU occupancy decisions exactly as §IV-H anticipated.")
}

// kernel is a memory-divergent gather: every warp lane touches its own
// line, the pattern that makes GPU MLP MSHR-bound.
func kernel(gpu *platform.Platform, warps int) sim.Config {
	return sim.Config{
		Plat:           gpu,
		Cores:          20, // a scaled-down grid: 20 of 80 SMs is plenty for shape
		ThreadsPerCore: warps,
		Window:         0, // platform default: per-warp outstanding misses
		NewGen: func(coreID, threadID int) cpu.Generator {
			rng := rand.New(rand.NewSource(int64(coreID*131 + threadID)))
			base := uint64(coreID*64+threadID+1) << 32
			n := 3000
			return cpu.GeneratorFunc(func() (cpu.Op, bool) {
				if n <= 0 {
					return cpu.Op{}, false
				}
				n--
				return cpu.Op{
					Addr:      base + (rng.Uint64() & (1<<28 - 1)),
					Kind:      memsys.Load,
					GapCycles: 6, // a few ALU ops per lane-gather
					Work:      1,
				}, true
			})
		},
	}
}
