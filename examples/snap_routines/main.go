// snap_routines demonstrates the paper's §III-D methodology point: collect
// the metric per routine, not per program. A SNAP-like application is
// profiled as its phases — the hot dim3_sweep plus lighter solver phases —
// and the whole-program average is shown to wash the sweep's signal out
// (the paper found the same on real SNAP: only the per-routine profile
// revealed dim3_sweep as latency-bound and prefetchable).
package main

import (
	"fmt"
	"log"
	"os"

	"littleslaw"
	"littleslaw/internal/profiler"
	"littleslaw/internal/workloads"
)

func main() {
	skl, err := littleslaw.Platform("SKL")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("characterizing SKL...")
	profile, err := littleslaw.Characterize(skl)
	if err != nil {
		log.Fatal(err)
	}

	snap, err := littleslaw.Workload("SNAP")
	if err != nil {
		log.Fatal(err)
	}
	comd, err := littleslaw.Workload("CoMD") // stands in for SNAP's light phases
	if err != nil {
		log.Fatal(err)
	}

	app, err := profiler.Profile(skl, profile, []profiler.Phase{
		{
			Name:       "dim3_sweep",
			Config:     snap.Config(skl, 1, 0.2),
			TimeWeight: 0.55,
		},
		{
			Name:         "outer_solver",
			Config:       comd.Config(skl, 1, 0.2),
			TimeWeight:   0.45,
			RandomAccess: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := app.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	sweep := app.Routines[0].Report
	whole := app.WholeProgram
	fmt.Printf("per-routine: dim3_sweep runs at n_avg %.2f with headroom → the recipe points at software prefetching.\n", sweep.Occupancy)
	fmt.Printf("whole-program: the average (n_avg %.2f) blends the light solver in and undersells the sweep's memory problem.\n", whole.Occupancy)

	// Confirm the per-routine guidance pays off.
	pref := snap.WithVariant(workloads.Variant{SWPrefetchL2: true})
	base, err := littleslaw.Run(snap, skl, 1, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := littleslaw.Run(pref, skl, 1, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplying software prefetching to dim3_sweep alone: %.2fx (the paper saw 8%% on SNAP's KNL run, 1%% on SKL).\n",
		opt.Throughput/base.Throughput)
}
