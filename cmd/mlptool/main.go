// Command mlptool is the paper's method as a tool: it profiles a routine
// on a simulated platform, computes the Little's-Law MLP / MSHR-occupancy
// metric, narrates the Figure-1 recipe, and lists the verdict for every
// optimization the recipe rules on.
//
// Usage:
//
//	mlptool -platform KNL -workload ISx
//	mlptool -platform KNL -workload ISx -vect -threads 2
//	mlptool -platform SKL -workload MiniGhost -tiled
//	mlptool -platform SKL -workload SNAP -explain       # recipe narration only
//	mlptool -profile prof.json ...                      # reuse a saved X-Mem profile
//	mlptool -autotune -workers 8 -timeout 5m ...        # concurrent candidate evaluation
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"littleslaw/internal/access"
	"littleslaw/internal/autotune"
	"littleslaw/internal/buildinfo"
	"littleslaw/internal/core"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/runner"
	"littleslaw/internal/workloads"
	"littleslaw/internal/xmem"
)

func main() {
	platName := flag.String("platform", "SKL", "platform: SKL, KNL or A64FX")
	workName := flag.String("workload", "ISx", "workload: ISx, HPCG, PENNANT, CoMD, MiniGhost or SNAP")
	threads := flag.Int("threads", 1, "hardware threads per core (SMT)")
	vect := flag.Bool("vect", false, "vectorized variant")
	tiled := flag.Bool("tiled", false, "loop-tiled variant")
	pref := flag.Bool("l2pref", false, "L2 software-prefetch variant")
	nofuse := flag.Bool("nofuse", false, "loop fusion disabled")
	scale := flag.Float64("scale", 0.3, "work scale factor")
	profilePath := flag.String("profile", "", "bandwidth-latency profile JSON (default: characterize now)")
	explainOnly := flag.Bool("explain", false, "print only the recipe narration")
	tune := flag.Bool("autotune", false, "run the Figure-1 loop to a fixed point instead of a single analysis")
	classifyPattern := flag.Bool("classify", false, "derive the random-vs-streaming classification from the access stream instead of the workload's own flag")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent simulations for -autotune and characterization (1 = serial; results are identical)")
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "mlptool")
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mlptool:", err)
		os.Exit(1)
	}

	p, err := platform.ByName(*platName)
	if err != nil {
		fail(err)
	}
	w, ok := workloads.ByName(*workName)
	if !ok {
		fail(fmt.Errorf("unknown workload %q (want one of %s)", *workName, workloadNames()))
	}
	w = w.WithVariant(workloads.Variant{
		Vectorized:   *vect,
		Tiled:        *tiled,
		SWPrefetchL2: *pref,
		NoFuse:       *nofuse,
	})

	var curve *queueing.Curve
	if *profilePath != "" {
		f, err := os.Open(*profilePath)
		if err != nil {
			fail(err)
		}
		prof, err := xmem.ReadJSON(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if prof.Platform != p.Name {
			fail(fmt.Errorf("profile is for %s, not %s", prof.Platform, p.Name))
		}
		curve, err = prof.Curve()
		if err != nil {
			fail(err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "mlptool: characterizing %s (once per platform; save with xmemprof)...\n", p.Name)
		curve, err = xmem.ProfileForContext(ctx, p)
		if err != nil {
			fail(err)
		}
	}

	if *tune {
		fmt.Fprintf(os.Stderr, "mlptool: autotuning %s on %s (the Figure-1 loop)...\n", w.Name(), p.Name)
		res, err := autotune.TuneContext(ctx, p, curve, w, autotune.Options{Scale: *scale, UserIntuition: true, Workers: *workers})
		if err != nil {
			fail(err)
		}
		for i, s := range res.Steps {
			verdict := "rejected"
			if s.Accepted {
				verdict = "ACCEPTED"
			}
			fmt.Printf("step %d: n_avg %.2f of %d %s MSHRs → try %s → %.2fx (%s)\n",
				i+1, s.Report.Occupancy, s.Report.LimiterCapacity, s.Report.Limiter,
				s.Tried, s.Speedup, verdict)
		}
		fmt.Printf("\nfinal: %s with %d thread(s)/core — %.2fx over base\n",
			res.FinalVariant.Label(res.FinalThreads), res.FinalThreads, res.TotalSpeedup)
		fmt.Println(core.Explain(res.FinalReport))
		return
	}

	fmt.Fprintf(os.Stderr, "mlptool: running %s/%s (%s) on the %d-core node...\n",
		w.Name(), w.Routine(), w.Variant().Label(*threads), p.Cores)
	res, err := runner.Run(ctx, w.Config(p, *threads, *scale))
	if err != nil {
		fail(err)
	}

	random := w.RandomAccess()
	if *classifyPattern {
		cls, err := access.NewClassifier(p.LineBytes)
		if err != nil {
			fail(err)
		}
		gen := w.Config(p, 1, *scale).NewGen(0, 0)
		for i := 0; i < 20000; i++ {
			op, ok := gen.Next()
			if !ok {
				break
			}
			if op.Kind == memsys.Load || op.Kind == memsys.Store {
				cls.Observe(op.Addr)
			}
		}
		prof := cls.Profile()
		random = prof.RandomAccess()
		fmt.Printf("pattern: %s\n", prof)
	}

	rep, err := core.Analyze(p, curve, core.Measurement{
		Routine:                w.Routine(),
		BandwidthGBs:           res.TotalGBs,
		ActiveCores:            res.Cores,
		ThreadsPerCore:         *threads,
		PrefetchedReadFraction: res.PrefetchedReadFraction,
		RandomAccess:           random,
	})
	if err != nil {
		fail(err)
	}

	fmt.Println(core.Explain(rep))
	if *explainOnly {
		return
	}

	fmt.Printf("measured:  %.1f GB/s (reads %.1f, writebacks %.1f), prefetched fraction %.2f\n",
		res.TotalGBs, res.ReadGBs, res.WriteGBs, res.PrefetchedReadFraction)
	fmt.Printf("simulator ground truth: L1 MSHR occupancy %.2f, L2 %.2f, DRAM latency %.0f ns\n\n",
		res.TrueL1Occ, res.TrueL2Occ, res.MeanDRAMLatencyNs)

	fmt.Println("Recipe verdicts:")
	for _, a := range core.Advise(rep, w.Capabilities(p, *threads)) {
		fmt.Printf("  %-24s %-10s %s\n", a.Opt, a.Stance, a.Reason)
	}
}

func workloadNames() string {
	var names []string
	for _, w := range workloads.All() {
		names = append(names, w.Name())
	}
	return strings.Join(names, ", ")
}
