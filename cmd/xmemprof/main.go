// Command xmemprof runs the X-Mem-style memory characterization for a
// platform and prints (or saves) its bandwidth→latency profile — the
// once-per-processor artifact of the paper's methodology (footnote 2).
//
// Usage:
//
//	xmemprof -platform SKL                  # print the profile
//	xmemprof -platform KNL -o knl.json      # save as JSON for mlptool -profile
//	xmemprof -platform A64FX -probes 500    # higher-precision sweep
//	xmemprof -platform KNL -workers 8       # sweep operating points concurrently
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"littleslaw/internal/buildinfo"
	"littleslaw/internal/platform"
	"littleslaw/internal/textplot"
	"littleslaw/internal/xmem"
)

func main() {
	platName := flag.String("platform", "SKL", "platform: SKL, KNL or A64FX")
	out := flag.String("o", "", "write the profile as JSON to this file")
	probes := flag.Int("probes", 300, "latency-probe samples per operating point")
	plot := flag.Bool("plot", false, "render the profile as a terminal chart")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrently measured operating points (1 = serial; the profile is identical)")
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "xmemprof")
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "xmemprof:", err)
		os.Exit(1)
	}

	p, err := platform.ByName(*platName)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "xmemprof: sweeping %s (%d cores, %s %.0f GB/s theoretical)...\n",
		p.Name, p.Cores, p.Memory.Tech, p.PeakGBs())
	curve, err := xmem.CharacterizeContext(ctx, p, xmem.Options{ProbeOps: *probes, Workers: *workers})
	if err != nil {
		fail(err)
	}

	prof := xmem.NewProfile(p, curve)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := prof.WriteJSON(f); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "xmemprof: wrote %s\n", *out)
		return
	}

	fmt.Printf("# %s bandwidth→latency profile (idle %.1f ns, achievable %.1f GB/s of %.0f theoretical)\n",
		p.Name, curve.IdleLatencyNs(), curve.MaxBandwidthGBs(), p.PeakGBs())
	if *plot {
		pts := curve.Points()
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, pt := range pts {
			xs[i] = pt.BandwidthGBs
			ys[i] = pt.LatencyNs
		}
		chart, err := textplot.Render([]textplot.Series{{Name: "loaded latency", X: xs, Y: ys}},
			textplot.Options{Title: p.Name + " bandwidth→latency profile", XLabel: "GB/s", YLabel: "ns"})
		if err != nil {
			fail(err)
		}
		fmt.Print(chart)
		return
	}
	fmt.Println("bandwidth_gbs,latency_ns")
	for _, pt := range curve.Points() {
		fmt.Printf("%.2f,%.2f\n", pt.BandwidthGBs, pt.LatencyNs)
	}
}
