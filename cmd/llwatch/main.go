// Command llwatch runs the sliding-window Little's-Law monitor live, in
// either of two places. Locally, it tails a stream of bandwidth counter
// samples (NDJSON on stdin or a file) and runs the monitor itself. Remotely
// (-url), it tails a named llserved stream — GET /v1/watch/{stream} — over
// the resilient client: the connection retries with backoff, a broken
// stream reconnects and deduplicates replayed events by sequence number,
// and a terminal "error" event from the server (its monitor died) is
// surfaced instead of a silent hang. Either way: every window prints a
// sparkline of n_avg against the binding MSHR ceiling, every detected
// phase prints its Figure-1 recipe advice, and the final summary calls out
// when the whole-stream average would have misled (§III-D).
//
// Usage:
//
//	llserved-style counters | llwatch -platform SKL
//	llwatch -platform SKL -f samples.ndjson -window 8 -stride 4
//	llwatch -url http://localhost:8080 -stream run42    # remote tail
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"littleslaw/internal/buildinfo"
	"littleslaw/internal/client"
	"littleslaw/internal/experiments"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/stream"
	"littleslaw/internal/textplot"
	"littleslaw/internal/xmem"
)

func main() {
	platName := flag.String("platform", "SKL", "platform whose curve and MSHR ceilings apply (local mode)")
	input := flag.String("f", "-", "NDJSON sample file ('-' = stdin; local mode)")
	remoteURL := flag.String("url", "", "llserved base URL — tail a server-side stream instead of running the monitor locally")
	streamName := flag.String("stream", "", "named stream to tail on the server (with -url)")
	reconnects := flag.Int("reconnect", 5, "times to reconnect a broken remote stream before giving up (with -url)")
	period := flag.Float64("period", 1, "seconds between samples that carry no t_s")
	window := flag.Int("window", 8, "sliding-window width in samples")
	stride := flag.Int("stride", 0, "window stride in samples (0 = half the window)")
	cores := flag.Int("cores", 0, "active cores the samples were measured on (0 = whole node)")
	threads := flag.Int("threads", 1, "threads per core in the measured run")
	random := flag.Bool("random-access", false, "classify the stream as random-access when samples carry no prefetch fraction")
	paper := flag.Bool("paper-profile", true, "use the paper's anchor curve (false = run the X-Mem characterization first)")
	spark := flag.Int("spark", 32, "sparkline width in windows")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "llwatch")
		return
	}
	if *spark < 1 {
		// -spark 0 would slide an empty history ring and panic; one column
		// is the narrowest sparkline that still means anything.
		*spark = 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pr := &printer{spark: *spark, history: make([]float64, 0, *spark)}

	if *remoteURL != "" {
		if *streamName == "" {
			fail(fmt.Errorf("-url needs -stream (the server-side stream name)"))
		}
		if err := tail(ctx, *remoteURL, *streamName, *reconnects, pr); err != nil {
			fail(err)
		}
		return
	}

	p, err := platform.ByName(*platName)
	if err != nil {
		fail(err)
	}
	var profile *queueing.Curve
	if *paper {
		profile, err = experiments.PaperProfileFor(p)
	} else {
		fmt.Fprintf(os.Stderr, "llwatch: characterizing %s...\n", p.Name)
		profile, err = xmem.Characterize(p, xmem.Options{})
	}
	if err != nil {
		fail(err)
	}

	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}

	cfg := stream.Config{
		Platform:       p,
		Profile:        profile,
		WindowSamples:  *window,
		StrideSamples:  *stride,
		ActiveCores:    *cores,
		ThreadsPerCore: *threads,
		RandomAccess:   *random,
	}
	sum, err := stream.Monitor(ctx, stream.NewNDJSONSource(r, *period), cfg, pr.print)
	if err != nil {
		fail(err)
	}
	pr.summary(*sum)
}

// printer renders monitor events; both the local monitor and the remote
// tail feed it.
type printer struct {
	spark   int
	history []float64
}

func (pr *printer) print(ev stream.Event) error {
	switch ev.Kind {
	case "window":
		w := ev.Window
		// The sparkline's fixed ceiling is the window's binding MSHR
		// capacity, so a full block always reads "queue at its limit".
		if len(pr.history) == pr.spark {
			pr.history = append(pr.history[:0], pr.history[1:]...)
		}
		pr.history = append(pr.history, w.Occupancy)
		mark := " "
		if w.Saturated {
			mark = "!"
		}
		fmt.Printf("%*s  n_avg %5.1f /%2d %-2s%s  %6.1f GB/s  %5.1f ns  [%.0f–%.0fs]\n",
			pr.spark, textplot.Sparkline(pr.history, 0, float64(w.LimiterCapacity)),
			w.Occupancy, w.LimiterCapacity, w.Limiter, mark, w.BandwidthGBs, w.LatencyNs, w.StartS, w.EndS)
	case "phase":
		ph := ev.Phase
		fmt.Printf("-- phase %d [%.0f–%.0fs, %d windows]: %s (n_avg %.1f/%d %s at %.1f GB/s)\n",
			ph.Index, ph.StartS, ph.EndS, ph.Windows, ph.Action,
			ph.Occupancy, ph.LimiterCapacity, ph.Limiter, ph.BandwidthGBs)
		for _, a := range ph.Advice {
			fmt.Printf("     %-10s %-22s %s\n", a.Stance, a.Optimization, a.Reason)
		}
	}
	return nil
}

func (pr *printer) summary(sum stream.SummaryEvent) {
	fmt.Printf("== %d samples, %d windows, %d phases; whole-stream mean %.1f GB/s -> n_avg %.1f, action %s\n",
		sum.Samples, sum.Windows, sum.Phases, sum.BandwidthGBs, sum.Occupancy, sum.Action)
	if sum.MisleadingAggregate {
		fmt.Printf("!! the whole-stream average misleads: %s\n", sum.Detail)
	}
}

// errStreamDone unwinds the tail once a terminal event (summary or error)
// arrived — the server closes the stream right after, but unwinding on the
// event itself means a stalled close cannot hang the watcher.
var errStreamDone = errors.New("stream done")

// tail follows a server-side stream. Reconnects replay recent events from
// the broker's buffer; lastSeq filters the replay so each event prints
// exactly once.
func tail(ctx context.Context, baseURL, name string, reconnects int, pr *printer) error {
	cl, err := client.New(client.Config{BaseURL: baseURL})
	if err != nil {
		return err
	}
	lastSeq := -1
	var terminal error
	done := false
	for tryConnect := 0; ; tryConnect++ {
		err := cl.Stream(ctx, "/v1/watch/"+name, func(line []byte) error {
			var ev stream.Event
			if err := json.Unmarshal(line, &ev); err != nil {
				return fmt.Errorf("bad event: %w", err)
			}
			if ev.Seq <= lastSeq {
				return nil
			}
			lastSeq = ev.Seq
			switch ev.Kind {
			case "summary":
				pr.summary(*ev.Summary)
				done = true
				return errStreamDone
			case "error":
				terminal = fmt.Errorf("server monitor failed: %s", ev.Error.Message)
				done = true
				return errStreamDone
			default:
				return pr.print(ev)
			}
		})
		switch {
		case done:
			return terminal
		case err == nil:
			// Clean EOF without a terminal event: the stream closed
			// server-side (monitor finished before we subscribed, or the
			// server shut down). Nothing more will come.
			return nil
		case ctx.Err() != nil:
			return nil
		case tryConnect >= reconnects:
			return err
		}
		fmt.Fprintf(os.Stderr, "llwatch: stream broken (%v), reconnecting %d/%d\n", err, tryConnect+1, reconnects)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(500 * time.Millisecond):
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "llwatch:", err)
	os.Exit(1)
}
