// Command llwatch tails a stream of bandwidth counter samples (NDJSON on
// stdin or a file) and runs the sliding-window Little's-Law monitor over
// it live: every window prints a sparkline of n_avg against the binding
// MSHR ceiling, every detected phase prints its Figure-1 recipe advice,
// and the final summary calls out when the whole-stream average would
// have misled (§III-D).
//
// Usage:
//
//	llserved-style counters | llwatch -platform SKL
//	llwatch -platform SKL -f samples.ndjson -window 8 -stride 4
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"littleslaw/internal/buildinfo"
	"littleslaw/internal/experiments"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/stream"
	"littleslaw/internal/textplot"
	"littleslaw/internal/xmem"
)

func main() {
	platName := flag.String("platform", "SKL", "platform whose curve and MSHR ceilings apply")
	input := flag.String("f", "-", "NDJSON sample file ('-' = stdin)")
	period := flag.Float64("period", 1, "seconds between samples that carry no t_s")
	window := flag.Int("window", 8, "sliding-window width in samples")
	stride := flag.Int("stride", 0, "window stride in samples (0 = half the window)")
	cores := flag.Int("cores", 0, "active cores the samples were measured on (0 = whole node)")
	threads := flag.Int("threads", 1, "threads per core in the measured run")
	random := flag.Bool("random-access", false, "classify the stream as random-access when samples carry no prefetch fraction")
	paper := flag.Bool("paper-profile", true, "use the paper's anchor curve (false = run the X-Mem characterization first)")
	spark := flag.Int("spark", 32, "sparkline width in windows")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "llwatch")
		return
	}
	if *spark < 1 {
		// -spark 0 would slide an empty history ring and panic; one column
		// is the narrowest sparkline that still means anything.
		*spark = 1
	}

	p, err := platform.ByName(*platName)
	if err != nil {
		fail(err)
	}
	var profile *queueing.Curve
	if *paper {
		profile, err = experiments.PaperProfileFor(p)
	} else {
		fmt.Fprintf(os.Stderr, "llwatch: characterizing %s...\n", p.Name)
		profile, err = xmem.Characterize(p, xmem.Options{})
	}
	if err != nil {
		fail(err)
	}

	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := stream.Config{
		Platform:       p,
		Profile:        profile,
		WindowSamples:  *window,
		StrideSamples:  *stride,
		ActiveCores:    *cores,
		ThreadsPerCore: *threads,
		RandomAccess:   *random,
	}
	// The sparkline's fixed ceiling is the window's binding MSHR capacity,
	// so a full block always reads "queue at its limit".
	history := make([]float64, 0, *spark)
	sum, err := stream.Monitor(ctx, stream.NewNDJSONSource(r, *period), cfg, func(ev stream.Event) error {
		switch ev.Kind {
		case "window":
			w := ev.Window
			if len(history) == *spark {
				history = append(history[:0], history[1:]...)
			}
			history = append(history, w.Occupancy)
			mark := " "
			if w.Saturated {
				mark = "!"
			}
			fmt.Printf("%*s  n_avg %5.1f /%2d %-2s%s  %6.1f GB/s  %5.1f ns  [%.0f–%.0fs]\n",
				*spark, textplot.Sparkline(history, 0, float64(w.LimiterCapacity)),
				w.Occupancy, w.LimiterCapacity, w.Limiter, mark, w.BandwidthGBs, w.LatencyNs, w.StartS, w.EndS)
		case "phase":
			ph := ev.Phase
			fmt.Printf("-- phase %d [%.0f–%.0fs, %d windows]: %s (n_avg %.1f/%d %s at %.1f GB/s)\n",
				ph.Index, ph.StartS, ph.EndS, ph.Windows, ph.Action,
				ph.Occupancy, ph.LimiterCapacity, ph.Limiter, ph.BandwidthGBs)
			for _, a := range ph.Advice {
				fmt.Printf("     %-10s %-22s %s\n", a.Stance, a.Optimization, a.Reason)
			}
		}
		return nil
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("== %d samples, %d windows, %d phases; whole-stream mean %.1f GB/s -> n_avg %.1f, action %s\n",
		sum.Samples, sum.Windows, sum.Phases, sum.BandwidthGBs, sum.Occupancy, sum.Action)
	if sum.MisleadingAggregate {
		fmt.Printf("!! the whole-stream average misleads: %s\n", sum.Detail)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "llwatch:", err)
	os.Exit(1)
}
