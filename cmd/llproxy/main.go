// Command llproxy is the Little's-Law-aware scale-out tier: a reverse
// proxy sharding /v1/* across llserved backends. Requests route by cache
// affinity — a consistent hash of the canonical analysis identity, so
// identical work revisits the backend whose runner LRU already holds the
// result — and spill to the least-loaded backend (by live per-backend
// n_avg = λ·W estimates) when the affinity owner is over the occupancy
// ceiling. Backends are health-checked via /healthz behind per-backend
// circuit breakers; idempotent GETs are hedged.
//
// Usage:
//
//	llproxy -backends http://h1:8080,http://h2:8080,http://h3:8080
//	llproxy -addr :8000 -occupancy-ceiling 16    # spill earlier
//	llproxy -hedge-delay 100ms                   # hedge GETs sooner (negative disables)
//	llproxy -probe-interval 1s                   # faster failure detection
//	llproxy -faults 'seed=1;cluster.forward=latency:0.1:50ms'
//
// Endpoints mirror llserved's /v1/* surface, plus:
//
//	GET /healthz        per-backend breaker state, health and occupancy estimates
//	GET /metrics        llproxy_* per-backend metrics (requests, breaker state,
//	                    estimated and reported n_avg, hedges, failovers)
//	GET /v1/trace/{id}  the proxy's own waterfall for one forwarded request
//	GET /v1/traces      NDJSON tail of the proxy's finished traces
//
// Forwarded responses carry the proxy's X-Trace-Id/X-Trace-Summary plus
// X-Backend-Trace-Id, the backend's own trace id for its /v1/trace ring.
//
// /v1/faults fans out to every backend so one call arms or disarms chaos
// across the fleet. The probe loop also reads each backend's brownout mode
// and draining flag from its /healthz body: draining backends stop
// receiving traffic before their listeners close (rolling restarts lose
// nothing), and backends degraded past B2 yield their affinity to
// full-fidelity peers while any exist. X-Brownout-Mode and X-Degraded
// response headers relay through untouched. Shutdown is graceful and
// drain-aware: SIGINT/SIGTERM flips the proxy's own /healthz to
// "draining", sheds new forwards with 503 + Retry-After, waits up to
// -drain-timeout for in-flight requests with the listener open, then
// closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"littleslaw/internal/buildinfo"
	"littleslaw/internal/cluster"
	"littleslaw/internal/debugmux"
	"littleslaw/internal/faults"
)

func main() {
	addr := flag.String("addr", ":8000", "listen address")
	backends := flag.String("backends", "", "comma-separated llserved base URLs (required)")
	ceiling := flag.Float64("occupancy-ceiling", 32, "estimated per-backend n_avg above which affinity is overridden and requests spill to the least-loaded backend")
	halfLife := flag.Duration("rate-halflife", 10*time.Second, "arrival-rate estimator half-life")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "background /healthz probe spacing (negative disables probing)")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe deadline")
	breakerFailures := flag.Int("breaker-failures", 3, "consecutive transport failures that open a backend's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker rejects before a half-open trial")
	hedgeDelay := flag.Duration("hedge-delay", 250*time.Millisecond, "how long an idempotent GET waits before racing a second backend (negative disables hedging)")
	clientTimeout := flag.Duration("client-timeout", 10*time.Second, "per-forwarded-attempt deadline")
	clientAttempts := flag.Int("client-attempts", 2, "attempts per forwarded request before failing over to another backend")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server read timeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server keep-alive idle timeout")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long to keep the listener open in draining mode (healthz reports draining, new forwards shed 503) before closing it")
	faultSpec := flag.String("faults", "", "fault-injection spec for the proxy's own sites, e.g. 'seed=1;cluster.forward=error:0.1'")
	traceCapacity := flag.Int("trace-capacity", 0, "finished forward traces retained for GET /v1/trace/{id} (0 = 256)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this loopback admin address (e.g. "+debugmux.DefaultAddr+"; empty = disabled)")
	seed := flag.Int64("seed", 0, "deterministic backoff jitter seed (0 = from the clock)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "llproxy")
		return
	}
	if *backends == "" {
		log.Fatalf("llproxy: -backends is required (comma-separated llserved URLs)")
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if *faultSpec != "" {
		fseed, rules, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			log.Fatalf("llproxy: -faults: %v", err)
		}
		if err := faults.Global().Configure(fseed, rules); err != nil {
			log.Fatalf("llproxy: -faults: %v", err)
		}
		log.Printf("llproxy: fault injection armed (%s)", faults.FormatSpec(fseed, rules))
	}

	p, err := cluster.New(cluster.Config{
		Backends:          urls,
		OccupancyCeiling:  *ceiling,
		RateHalfLife:      *halfLife,
		ProbeInterval:     *probeInterval,
		ProbeTimeout:      *probeTimeout,
		BreakerFailures:   *breakerFailures,
		BreakerCooldown:   *breakerCooldown,
		HedgeDelay:        *hedgeDelay,
		ClientTimeout:     *clientTimeout,
		ClientMaxAttempts: *clientAttempts,
		TraceCapacity:     *traceCapacity,
		Seed:              *seed,
	})
	if err != nil {
		log.Fatalf("llproxy: %v", err)
	}
	p.Start()
	defer p.Close()

	if *pprofAddr != "" {
		got, closePprof, err := debugmux.Serve(*pprofAddr)
		if err != nil {
			log.Fatalf("llproxy: -pprof: %v", err)
		}
		defer closePprof()
		log.Printf("llproxy: pprof on http://%s/debug/pprof/", got)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// No http.Server WriteTimeout: proxied /v1/watch streams are long-lived.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           p.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("llproxy: listening on %s, sharding across %s", *addr, strings.Join(p.Backends(), ", "))

	select {
	case err := <-errc:
		log.Fatalf("llproxy: %v", err)
	case <-ctx.Done():
	}

	// Drain first, listener open: an upstream balancer's probe sees
	// "draining" and reroutes before this process stops answering.
	p.BeginDrain()
	log.Printf("llproxy: draining (up to %s for %d in-flight requests, listener open)", *drainTimeout, p.InFlight())
	drainDeadline := time.Now().Add(*drainTimeout)
	for p.InFlight() > 0 && time.Now().Before(drainDeadline) {
		time.Sleep(20 * time.Millisecond)
	}
	log.Printf("llproxy: shutting down (waiting up to %s for in-flight requests)", *shutdownGrace)
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("llproxy: shutdown: %v", err)
		os.Exit(1)
	}
	log.Printf("llproxy: bye")
}
