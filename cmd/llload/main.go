// Command llload drives llserved with synthetic traffic: a closed-loop
// population of clients or an open-loop arrival process at a fixed rate,
// through the resilient internal/client (per-attempt timeouts, capped
// jittered backoff on 429/5xx, Retry-After honoring). It is the manual
// companion to the end-to-end shed/recover and chaos tests: point it at a
// server, push past capacity, and watch /metrics report the limiter
// holding n_avg at the ceiling while the excess sheds.
//
// Usage:
//
//	llload -url http://localhost:8080/v1/analyze -body '{"platform":"SKL","measurement":{"bandwidth_gbs":80}}'
//	llload -url ... -mode open -rate 400 -duration 10s      # open loop, 400 req/s offered
//	llload -url ... -mode closed -c 16 -duration 10s        # closed loop, 16 clients
//	llload -url ... -retries 3                              # retry 429/5xx, honoring Retry-After
//	llload -url ... -mode open -arrivals poisson -seed 42   # reproducible Poisson arrivals
//	llload -targets http://a:8181/v1/analyze,http://b:8182/v1/analyze -body ...
//	                                                        # round-robin a fleet, per-target breakdown
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"littleslaw/internal/buildinfo"
	"littleslaw/internal/loadgen"
)

// targetList collects -targets values: the flag is repeatable and each
// occurrence may carry a comma-separated list.
type targetList []string

func (t *targetList) String() string { return strings.Join(*t, ",") }

func (t *targetList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*t = append(*t, s)
		}
	}
	return nil
}

func main() {
	url := flag.String("url", "", "target URL (required unless -targets is given)")
	var targets targetList
	flag.Var(&targets, "targets", "comma-separated target URLs to round-robin (repeatable); prints a per-target breakdown")
	method := flag.String("method", "", "HTTP method (default POST with -body, GET without)")
	body := flag.String("body", "", "request body sent with every request")
	bodyFile := flag.String("body-file", "", "read the request body from a file")
	contentType := flag.String("content-type", "application/json", "request body content type")
	mode := flag.String("mode", "closed", "driving discipline: closed (fixed clients) or open (fixed arrival rate)")
	concurrency := flag.Int("c", 4, "closed-loop client population")
	rate := flag.Float64("rate", 100, "open-loop arrival rate, requests/second")
	arrivals := flag.String("arrivals", "uniform", "open-loop arrival discipline: uniform or poisson")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive")
	maxRequests := flag.Int("n", 0, "stop after this many arrivals (0 = until -duration)")
	retries := flag.Int("retries", 0, "retry cap per arrival on 429/5xx (sleeps for Retry-After when hinted)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-attempt client timeout")
	seed := flag.Int64("seed", 0, "seed for the arrival schedule and retry jitter (0 = from the clock); same seed replays the same offered load")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "llload")
		return
	}
	if *url == "" && len(targets) == 0 {
		fail(fmt.Errorf("-url or -targets is required"))
	}
	payload := []byte(*body)
	if *bodyFile != "" {
		if *body != "" {
			fail(fmt.Errorf("use -body or -body-file, not both"))
		}
		data, err := os.ReadFile(*bodyFile)
		if err != nil {
			fail(err)
		}
		payload = data
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	where := *url
	if len(targets) > 0 {
		where = fmt.Sprintf("%d targets", len(targets))
		if len(targets) == 1 {
			where = targets[0]
		}
	}
	fmt.Printf("llload: %s %s  mode=%s", methodFor(*method, payload), where, *mode)
	if *mode == "open" {
		fmt.Printf(" rate=%g/s arrivals=%s", *rate, *arrivals)
	} else {
		fmt.Printf(" clients=%d", *concurrency)
	}
	fmt.Printf(" duration=%s retries=%d", *duration, *retries)
	if *seed != 0 {
		fmt.Printf(" seed=%d", *seed)
	}
	fmt.Println()

	res, err := loadgen.Run(ctx, loadgen.Options{
		URL:         *url,
		Targets:     targets,
		Method:      *method,
		Body:        payload,
		ContentType: *contentType,
		Mode:        *mode,
		Concurrency: *concurrency,
		Rate:        *rate,
		Arrivals:    *arrivals,
		Duration:    *duration,
		MaxRequests: *maxRequests,
		Retries:     *retries,
		Timeout:     *timeout,
		Seed:        *seed,
	})
	if err != nil {
		fail(err)
	}
	fmt.Println("llload:", res)
	if per := res.PerTarget(); len(per) > 1 {
		for _, tc := range per {
			fmt.Println("llload:   ", tc)
		}
	}
	if res.RetryAfterSeen > 0 {
		fmt.Printf("llload: %d sheds carried Retry-After hints\n", res.RetryAfterSeen)
	}
	if res.DegradedOK > 0 {
		by := res.OKByMode()
		fmt.Printf("llload: goodput split: %d full-fidelity + %d degraded (stale %d, analytic %d); degraded successes count as successes\n",
			res.OK-res.DegradedOK, res.DegradedOK, by["stale"], by["analytic"])
	}
	if id, lat := res.SlowestTrace(); id != "" {
		fmt.Printf("llload: slowest request %s took %s — GET /v1/trace/%s for its waterfall\n", id, lat.Round(time.Millisecond), id)
	}
	if res.OK == 0 && res.Sent > 0 {
		os.Exit(1)
	}
}

func methodFor(m string, body []byte) string {
	if m != "" {
		return m
	}
	if len(body) > 0 {
		return "POST"
	}
	return "GET"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "llload:", err)
	os.Exit(1)
}
