// Command llserved serves the Little's-Law analysis pipeline as an HTTP
// JSON API: platform characterization, the Equation-2 metric, the Figure-1
// recipe, the autotune loop and the paper tables, with profile/table
// caching and Prometheus-style metrics.
//
// Usage:
//
//	llserved                         # serve on :8080, honest X-Mem profiles
//	llserved -addr :9000             # another port
//	llserved -paper-profiles         # published anchor curves (instant startup)
//	llserved -warm                   # pre-characterize all platforms at startup
//	llserved -timeout 2m             # default per-request deadline
//	llserved -workers 8              # per-request simulation concurrency
//	llserved -limit-ceiling 32       # Little's-Law admission ceiling
//	llserved -limit-ceiling -1       # disable admission control
//	llserved -faults 'seed=42;handler.*=error:0.2'   # arm fault injection
//
// Endpoints:
//
//	GET  /healthz                    liveness
//	GET  /metrics                    Prometheus text metrics (including the
//	                                 server's own Little's-Law concurrency)
//	GET  /v1/platforms               the paper's machines
//	POST /v1/characterize            {"platform":"KNL"} → bandwidth→latency profile
//	POST /v1/analyze                 workload run or direct measurement → MLP report
//	POST /v1/analyze/batch           up to 16 analyses in one request
//	POST /v1/advise                  … → report plus Figure-1 recipe verdicts
//	POST /v1/tune                    … → autotune session
//	GET  /v1/tables/{IV..IX}?scale=  regenerated paper table (also T4..T9)
//	POST /v1/watch                   stream monitor (NDJSON / SSE)
//	GET  /v1/watch/{stream}          subscribe to a named stream
//	GET  /v1/faults                  fault-injection state and tallies
//	POST /v1/faults                  reconfigure or toggle fault injection
//	GET  /v1/trace/{id}              one request's latency waterfall (JSON)
//	GET  /v1/traces?max=N            NDJSON tail of finished traces
//	GET  /v1/brownout                brownout controller state
//	POST /v1/brownout                pin a brownout mode or unpin
//
// Every /v1/* response carries X-Trace-Id (fetchable from /v1/trace/{id})
// and X-Trace-Summary, a one-line queue+service waterfall. -pprof serves
// net/http/pprof on a loopback admin port for correlating traces with
// CPU profiles.
//
// All endpoints accept ?timeout=30s. The /v1/* routes sit behind an
// admission controller that applies the paper's own law to the server:
// it tracks occupancy n_avg = Σ λ_route × W_route and sheds with 429 +
// Retry-After past the -limit-ceiling (cmd/llload drives it). On top of
// the limiter sits the brownout ladder (internal/brownout): sustained
// pressure steps the server through stale serving, analytic fallback and
// selective shedding before anything fails outright; -no-brownout turns
// it off. Shutdown is graceful and drain-aware: SIGINT/SIGTERM flips
// /healthz to "draining" (llproxy stops routing here), sheds new work
// with 503 + Retry-After, sends a terminal shutdown event to live
// streams, waits up to -drain-timeout for in-flight requests with the
// listener still open, then closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"littleslaw/internal/buildinfo"
	"littleslaw/internal/debugmux"
	"littleslaw/internal/experiments"
	"littleslaw/internal/faults"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 5*time.Minute, "default per-request deadline (?timeout= overrides, capped by -max-timeout)")
	maxTimeout := flag.Duration("max-timeout", 30*time.Minute, "largest accepted per-request deadline")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent simulations per request pipeline")
	paperProfiles := flag.Bool("paper-profiles", false, "serve the paper's published anchor curves instead of running the X-Mem characterization (instant, deterministic)")
	warm := flag.Bool("warm", false, "characterize all platforms in the background at startup")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long to keep the listener open in draining mode (healthz reports draining, new work sheds 503) before closing it")
	runnerTTL := flag.Duration("runner-ttl", 0, "simulation cache TTL; expired entries recompute normally but stay servable as marked-stale answers under brownout B1 (0 = never expires)")
	noBrownout := flag.Bool("no-brownout", false, "disable the brownout ladder (requires admission control to be on to matter)")
	limitCeiling := flag.Float64("limit-ceiling", 64, "admission controller's Little's-Law occupancy ceiling (negative disables admission control)")
	limitQueue := flag.Int("limit-queue", 0, "admission queue depth (0 = 2×ceiling, negative = shed immediately)")
	limitQueueTimeout := flag.Duration("limit-queue-timeout", 5*time.Second, "longest a request waits in the admission queue")
	maxStreams := flag.Int("max-streams", 64, "max concurrent /v1/watch connections (negative disables the cap)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server read timeout (full request including body)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server keep-alive idle timeout")
	writeTimeout := flag.Duration("write-timeout", time.Minute, "per-write response deadline, re-armed before every write (bounds stalled clients without cutting long-lived streams)")
	faultSpec := flag.String("faults", "", "fault-injection spec, e.g. 'seed=42;handler.*=error:0.2;runner.run=latency:0.1:50ms' (empty = faults off; runtime control via /v1/faults)")
	traceCapacity := flag.Int("trace-capacity", 0, "finished request traces retained for GET /v1/trace/{id} (0 = 256)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this loopback admin address (e.g. "+debugmux.DefaultAddr+"; empty = disabled)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "llserved")
		return
	}

	cfg := service.Config{
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		Workers:           *workers,
		LimitCeiling:      *limitCeiling,
		LimitQueue:        *limitQueue,
		LimitQueueTimeout: *limitQueueTimeout,
		MaxStreamClients:  *maxStreams,
		WriteTimeout:      *writeTimeout,
		TraceCapacity:     *traceCapacity,
		RunnerTTL:         *runnerTTL,
		DisableBrownout:   *noBrownout,
	}
	if *paperProfiles {
		cfg.ProfileFor = func(_ context.Context, p *platform.Platform) (*queueing.Curve, error) {
			return experiments.PaperProfileFor(p)
		}
	}
	if *faultSpec != "" {
		seed, rules, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			log.Fatalf("llserved: -faults: %v", err)
		}
		if err := faults.Global().Configure(seed, rules); err != nil {
			log.Fatalf("llserved: -faults: %v", err)
		}
		log.Printf("llserved: fault injection armed (%s)", faults.FormatSpec(seed, rules))
	}
	srv := service.New(cfg)

	if *pprofAddr != "" {
		got, closePprof, err := debugmux.Serve(*pprofAddr)
		if err != nil {
			log.Fatalf("llserved: -pprof: %v", err)
		}
		defer closePprof()
		log.Printf("llserved: pprof on http://%s/debug/pprof/", got)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *warm {
		go func() {
			for _, p := range platform.All() {
				if _, err := srv.Warm(ctx, p.Name); err != nil {
					log.Printf("llserved: warm %s: %v", p.Name, err)
					return
				}
				log.Printf("llserved: profile for %s ready", p.Name)
			}
		}()
	}

	// No http.Server WriteTimeout: it is a whole-response deadline that
	// would sever long-lived /v1/watch streams. The service arms a per-write
	// deadline (-write-timeout) before each write instead, which bounds
	// stalled clients while letting healthy streams run indefinitely.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("llserved: listening on %s (profiles: %s)", *addr, profileMode(*paperProfiles))

	select {
	case err := <-errc:
		log.Fatalf("llserved: %v", err)
	case <-ctx.Done():
	}

	// Drain first, listener open: /healthz flips to "draining" so a proxy's
	// prober reroutes before this process stops answering, new work sheds
	// with 503 + Retry-After, live streams hear a terminal shutdown event,
	// and in-flight requests get -drain-timeout to finish.
	srv.BeginDrain()
	log.Printf("llserved: draining (up to %s for %d in-flight requests, listener open)", *drainTimeout, srv.InFlight())
	drainDeadline := time.Now().Add(*drainTimeout)
	for srv.InFlight() > 0 && time.Now().Before(drainDeadline) {
		time.Sleep(20 * time.Millisecond)
	}
	log.Printf("llserved: shutting down (waiting up to %s for in-flight requests)", *shutdownGrace)
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("llserved: shutdown: %v", err)
		os.Exit(1)
	}
	log.Printf("llserved: bye")
}

func profileMode(paper bool) string {
	if paper {
		return "paper anchors"
	}
	return "X-Mem characterization on demand"
}
