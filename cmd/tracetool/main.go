// Command tracetool records, inspects and analyzes memory-operation
// traces. Traces decouple the analysis pipeline from the bundled workload
// models: record one thread of a model (or convert a real application's
// trace into the format) and push it through the classifier and the
// Little's-Law metric.
//
// Usage:
//
//	tracetool record  -platform SKL -workload ISx -o isx.trace [-ops 50000]
//	tracetool info    isx.trace
//	tracetool analyze -platform SKL isx.trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"littleslaw/internal/access"
	"littleslaw/internal/buildinfo"
	"littleslaw/internal/core"
	"littleslaw/internal/cpu"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/runner"
	"littleslaw/internal/sim"
	"littleslaw/internal/tracefile"
	"littleslaw/internal/workloads"
	"littleslaw/internal/xmem"
)

func main() {
	if len(os.Args) < 2 {
		fail(fmt.Errorf("usage: tracetool record|info|analyze ..."))
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "analyze":
		analyze(os.Args[2:])
	case "version", "-version", "--version":
		buildinfo.Print(os.Stdout, "tracetool")
	default:
		fail(fmt.Errorf("unknown subcommand %q", os.Args[1]))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracetool:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	platName := fs.String("platform", "SKL", "platform the trace's line size comes from")
	workName := fs.String("workload", "ISx", "workload to record")
	out := fs.String("o", "", "output trace file (required)")
	ops := fs.Int("ops", 0, "record at most this many operations (0 = whole stream)")
	scale := fs.Float64("scale", 0.2, "workload scale")
	fs.Parse(args)
	if *out == "" {
		fail(fmt.Errorf("record: -o is required"))
	}
	p, err := platform.ByName(*platName)
	if err != nil {
		fail(err)
	}
	w, ok := workloads.ByName(*workName)
	if !ok {
		fail(fmt.Errorf("unknown workload %q", *workName))
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	tw, err := tracefile.NewWriter(f, tracefile.Header{LineBytes: p.LineBytes})
	if err != nil {
		fail(err)
	}
	n, err := tracefile.Record(tw, w.Config(p, 1, *scale).NewGen(0, 0), *ops)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "tracetool: wrote %d operations to %s\n", n, *out)
}

func openTrace(path string) (*tracefile.Reader, *os.File) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	r, err := tracefile.NewReader(f)
	if err != nil {
		fail(err)
	}
	return r, f
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("info: one trace file expected"))
	}
	r, f := openTrace(fs.Arg(0))
	defer f.Close()

	cls, err := access.NewClassifier(r.Header.LineBytes)
	if err != nil {
		fail(err)
	}
	var loads, stores, prefetches int
	for {
		op, err := r.Read()
		if err != nil {
			break
		}
		switch op.Kind {
		case memsys.Load:
			loads++
			cls.Observe(op.Addr)
		case memsys.Store:
			stores++
			cls.Observe(op.Addr)
		default:
			prefetches++
		}
	}
	prof := cls.Profile()
	fmt.Printf("line size:  %d B\n", r.Header.LineBytes)
	fmt.Printf("operations: %d loads, %d stores, %d prefetches\n", loads, stores, prefetches)
	fmt.Printf("pattern:    %s\n", prof)
	fmt.Printf("recipe view: random-access=%v, tiling signal=%v\n", prof.RandomAccess(), prof.TilingSignal())
}

func analyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	platName := fs.String("platform", "SKL", "platform to replay on")
	cores := fs.Int("cores", 0, "cores replaying the trace (0 = full node)")
	window := fs.Int("window", 8, "per-thread demand window")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("analyze: one trace file expected"))
	}
	path := fs.Arg(0)
	p, err := platform.ByName(*platName)
	if err != nil {
		fail(err)
	}

	// Classify first (for the recipe's pattern input).
	r, f := openTrace(path)
	cls, err := access.NewClassifier(r.Header.LineBytes)
	if err != nil {
		fail(err)
	}
	for {
		op, err := r.Read()
		if err != nil {
			break
		}
		if op.Kind == memsys.Load || op.Kind == memsys.Store {
			cls.Observe(op.Addr)
		}
	}
	f.Close()
	prof := cls.Profile()

	fmt.Fprintf(os.Stderr, "tracetool: characterizing %s...\n", p.Name)
	curve, err := xmem.ProfileFor(p)
	if err != nil {
		fail(err)
	}

	fmt.Fprintf(os.Stderr, "tracetool: replaying %s on every core of the %s node...\n", path, p.Name)
	res, err := runner.Run(context.Background(), sim.Config{
		Plat:   p,
		Cores:  *cores,
		Window: *window,
		NewGen: func(coreID, threadID int) cpu.Generator {
			tr, file := openTrace(path)
			_ = file // closed on process exit; traces are replayed once
			return offsetGen{inner: tracefile.NewGenerator(tr), offset: uint64(coreID+1) << 40}
		},
	})
	if err != nil {
		fail(err)
	}

	rep, err := core.Analyze(p, curve, core.Measurement{
		Routine:                path,
		BandwidthGBs:           res.TotalGBs,
		ActiveCores:            res.Cores,
		PrefetchedReadFraction: res.PrefetchedReadFraction,
		RandomAccess:           prof.RandomAccess(),
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("pattern: %s\n\n", prof)
	fmt.Println(core.Explain(rep))
}

// offsetGen shifts a trace's addresses into a per-core arena so replayed
// copies do not falsely share lines across cores.
type offsetGen struct {
	inner  cpu.Generator
	offset uint64
}

func (g offsetGen) Next() (cpu.Op, bool) {
	op, ok := g.inner.Next()
	op.Addr += g.offset
	return op, ok
}
