// Command paperbench regenerates the paper's evaluation artifacts from the
// simulated platforms: Tables I–IX, Figure 2, and the Section I/II critique
// experiments, each printed alongside the published values.
//
// Usage:
//
//	paperbench                      # everything
//	paperbench -table IV            # one table (I..III static, IV..IX simulated)
//	paperbench -figure 2            # the Figure-2 roofline series (CSV)
//	paperbench -experiment tma-critique|latency-counter|mshr-stalls|idle-latency
//	paperbench -ablation mshr-sweep|stream-table|coalescing|future-hbm|prefetch-level|cache-mode
//	paperbench -scale 0.3           # faster, noisier runs
//	paperbench -platform KNL        # restrict simulated tables
//	paperbench -csv                 # machine-readable table output
//	paperbench -workers 8           # simulation concurrency (default GOMAXPROCS)
//	paperbench -timeout 10m         # abort cleanly if regeneration overruns
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"littleslaw/internal/buildinfo"
	"littleslaw/internal/experiments"
	"littleslaw/internal/report"
)

func main() {
	table := flag.String("table", "", "regenerate one table (I..IX); default all")
	figure := flag.String("figure", "", "regenerate one figure (2)")
	experiment := flag.String("experiment", "", "run one critique experiment (tma-critique, latency-counter, mshr-stalls, idle-latency)")
	ablation := flag.String("ablation", "", "run one design ablation (mshr-sweep, stream-table, coalescing, future-hbm, prefetch-level, cache-mode)")
	scale := flag.Float64("scale", 1.0, "work scale factor (lower = faster, noisier)")
	plats := flag.String("platform", "", "restrict to one platform (SKL, KNL, A64FX)")
	csv := flag.Bool("csv", false, "emit tables as CSV")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial; output is identical either way)")
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "paperbench")
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := experiments.Options{Scale: *scale, Workers: *workers}
	if *plats != "" {
		opts.Platforms = []string{*plats}
	}
	r := experiments.NewRunner(opts)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}

	switch {
	case *figure != "":
		if *figure != "2" {
			fail(fmt.Errorf("unknown figure %q (the paper's only data figure is 2)", *figure))
		}
		m, err := r.Figure2()
		if err != nil {
			fail(err)
		}
		if err := m.WriteCSV(os.Stdout); err != nil {
			fail(err)
		}
		return

	case *experiment != "":
		runExperiment(r, *experiment, fail)
		return

	case *ablation != "":
		runAblation(r, *ablation, fail)
		return

	case *table != "":
		emitTable(ctx, r, *table, *csv, fail)
		return
	}

	// Everything.
	for _, id := range []string{"I", "II", "III"} {
		emitTable(ctx, r, id, *csv, fail)
	}
	// One flat dispatch warms the run cache across all six tables, so the
	// per-table emission below is pure (ordered) assembly.
	if _, err := r.AllTablesContext(ctx); err != nil {
		fail(err)
	}
	for _, id := range experiments.TableIDs() {
		emitTable(ctx, r, id, *csv, fail)
	}
	m, err := r.Figure2()
	if err != nil {
		fail(err)
	}
	fmt.Println("FIGURE 2 — roofline with MSHR ceilings (KNL)")
	if err := m.WriteCSV(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Println()
	for _, e := range []string{"tma-critique", "latency-counter", "mshr-stalls", "idle-latency"} {
		runExperiment(r, e, fail)
	}
	for _, a := range []string{"mshr-sweep", "stream-table", "coalescing", "future-hbm", "prefetch-level", "cache-mode"} {
		runAblation(r, a, fail)
	}
}

func runAblation(r *experiments.Runner, name string, fail func(error)) {
	switch name {
	case "mshr-sweep":
		pts, err := r.MSHRSweep(nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("ABLATION — L1 MSHR capacity vs achievable bandwidth (ISx/KNL)")
		for _, p := range pts {
			fmt.Printf("  %2d MSHRs: %6.1f GB/s (true occupancy %5.2f)\n", p.L1MSHRs, p.BandwidthGBs, p.TrueL1Occ)
		}
		fmt.Println("(random-access bandwidth tracks the MSHR file — the structural basis of the metric)")
		fmt.Println()
	case "stream-table":
		pts, err := r.StreamTableSweep(nil)
		if err != nil {
			fail(err)
		}
		fmt.Println("ABLATION — prefetcher stream-table size vs 4-way SMT gain (HPCG/KNL, §IV-B)")
		for _, p := range pts {
			fmt.Printf("  %2d streams: 2HT %6.1f GB/s, 4HT %6.1f GB/s, gain %.2fx\n",
				p.Streams, p.BW2HT, p.BW4HT, p.Gain4HTOver)
		}
		fmt.Println("(the 16-entry table explains the paper's weak 1.03x 4-way gain)")
		fmt.Println()
	case "coalescing":
		ab, err := r.Coalescing()
		if err != nil {
			fail(err)
		}
		fmt.Println("ABLATION — MSHR coalescing (word-granular stream, SKL)")
		fmt.Printf("  coalesced: %.1f GB/s | duplicated: %.1f GB/s | traffic per work %.2fx | slowdown %.2fx\n",
			ab.BWCoalesced, ab.BWDuplicate, ab.TrafficBlowup, ab.Slowdown)
		fmt.Println()
	case "future-hbm":
		res, err := r.FutureHBM()
		if err != nil {
			fail(err)
		}
		fmt.Println("ABLATION — §IV-G future HBM3e-class node (vectorized HPCG)")
		fmt.Printf("  %.0f GB/s = %.0f%% of peak while L2 MSHR occupancy is %.1f of %d\n",
			res.BandwidthGBs, 100*res.PeakFraction, res.TrueL2Occ, res.L2Capacity)
		fmt.Println("(the MSHR file fills long before peak bandwidth: 'below peak' no longer implies compute-bound)")
		fmt.Println()
	case "prefetch-level":
		res, err := r.PrefetchLevel()
		if err != nil {
			fail(err)
		}
		fmt.Println("ABLATION — software-prefetch target level (ISx/KNL +vect,2ht, §III-C)")
		fmt.Printf("  prefetch to L1: %.2fx | prefetch to L2: %.2fx\n", res.L1Speedup, res.L2Speedup)
		fmt.Println("(L1 prefetches compete with demand for the scarce L1 MSHRs; L2 prefetches use the idle L2 file)")
		fmt.Println()
	case "cache-mode":
		out, err := r.CacheMode()
		if err != nil {
			fail(err)
		}
		fmt.Println("ABLATION \u2014 KNL flat vs MCDRAM cache mode (extension)")
		for _, c := range out {
			fmt.Printf("  %-45s flat/cache speedup %.2fx (memory-cache hit rate %.0f%%)\n",
				c.Workload, c.FlatOverCache, 100*c.MCHitFrac)
		}
		fmt.Println("(the paper's flat-mode choice: random footprints beyond the cache thrash it)")
		fmt.Println()
	default:
		fail(fmt.Errorf("unknown ablation %q", name))
	}
}

func emitTable(ctx context.Context, r *experiments.Runner, id string, csv bool, fail func(error)) {
	switch id {
	case "I", "II", "III":
		s, err := experiments.DescribeStatic(id)
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
		return
	}
	start := time.Now()
	t, err := r.TableContext(ctx, id)
	if err != nil {
		fail(err)
	}
	if csv {
		if err := report.WriteTableCSV(os.Stdout, t); err != nil {
			fail(err)
		}
		return
	}
	if err := report.WriteTable(os.Stdout, t); err != nil {
		fail(err)
	}
	fmt.Printf("(generated in %.1fs)\n\n", time.Since(start).Seconds())
}

func runExperiment(r *experiments.Runner, name string, fail func(error)) {
	switch name {
	case "tma-critique":
		out, err := r.TMACritiques()
		if err != nil {
			fail(err)
		}
		fmt.Println("EXPERIMENT — TMA critique (§I/§II)")
		for _, c := range out {
			fmt.Printf("\n%s on SKL:\n  TMA:    %s\n", c.Case, c.TMA.Summary())
			fmt.Printf("  metric: %s\n", c.Report)
			fmt.Printf("  true loaded latency: %.0f ns\n  %s\n", c.TrueLoadedLatencyNs, c.Commentary)
		}
		fmt.Println()
	case "latency-counter":
		exp, err := r.LatencyCounterCritique()
		if err != nil {
			fail(err)
		}
		fmt.Println("EXPERIMENT — latency-threshold counter on ISx/SKL (§II)")
		fmt.Printf("true loaded latency: %.0f ns = %.0f cycles\n", exp.TrueLoadedLatencyNs, exp.TrueLoadedLatencyCy)
		for _, s := range exp.Samples {
			fmt.Printf("  loads reported above %3d cycles: %4.0f%%\n", s.ThresholdCycles, 100*s.Fraction)
		}
		fmt.Println("(the counter attributes re-dispatch and page walks to latency; the paper measured 75% above 512cy against a true ~378cy)")
		fmt.Println()
	case "mshr-stalls":
		exp, err := r.MSHRStalls()
		if err != nil {
			fail(err)
		}
		fmt.Println("EXPERIMENT — MSHR residency before/after L2 prefetch, ISx/A64FX (§IV-A)")
		fmt.Printf("  base:      L1 occupancy %.2f, L2 occupancy %.2f\n", exp.BaseL1Occ, exp.BaseL2Occ)
		fmt.Printf("  +l2-pref:  L1 occupancy %.2f, L2 occupancy %.2f (speedup %.2fx)\n",
			exp.PrefL1Occ, exp.PrefL2Occ, exp.Speedup)
		fmt.Println("(the bottleneck moves from the L1 MSHR file to the larger L2 file, as the paper verified with a cycle-level simulator)")
		fmt.Println()
	case "idle-latency":
		out, err := r.IdleLatencyAblations()
		if err != nil {
			fail(err)
		}
		fmt.Println("ABLATION — idle vs loaded latency in Equation 2 (§III-B)")
		for _, a := range out {
			verdict := "same verdict"
			if a.DecisionFlips {
				verdict = "FLIPS the saturation verdict"
			}
			fmt.Printf("  %-12s at %6.1f GB/s: idle %3.0f ns → n_avg %5.2f | loaded %3.0f ns → n_avg %5.2f (%s)\n",
				a.Case, a.BandwidthGBs, a.IdleNs, a.OccIdle, a.LoadedNs, a.OccLoaded, verdict)
		}
		fmt.Println("(vendor idle latency underestimates MLP; the loaded profile is what makes Little's Law usable)")
		fmt.Println()
	default:
		fail(fmt.Errorf("unknown experiment %q", name))
	}
}
