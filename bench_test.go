// Benchmark harness: one macro-benchmark per paper table and figure (each
// iteration regenerates the artifact end to end — full-node simulation,
// counter readout, profile lookup, recipe), plus micro-benchmarks of the
// substrates. Macro benchmarks run at a reduced work scale and on the
// platform with the richest column of the corresponding table; run
//
//	go test -bench=Table -benchtime=1x
//
// for one full regeneration per table, or use cmd/paperbench for the
// full-scale, all-platform versions.
package littleslaw_test

import (
	"math/rand"
	"testing"

	"littleslaw"
	"littleslaw/internal/events"
	"littleslaw/internal/experiments"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/xmem"
)

// benchProfiles supplies the paper-anchored curves so macro benches
// measure table regeneration, not re-characterization.
func benchProfiles(p *platform.Platform) (*queueing.Curve, error) {
	switch p.Name {
	case "SKL":
		return queueing.NewCurve([]queueing.CurvePoint{
			{BandwidthGBs: 0.5, LatencyNs: 82}, {BandwidthGBs: 58.2, LatencyNs: 100},
			{BandwidthGBs: 92.9, LatencyNs: 117}, {BandwidthGBs: 106.9, LatencyNs: 145},
			{BandwidthGBs: 112, LatencyNs: 220},
		})
	case "KNL":
		return queueing.NewCurve([]queueing.CurvePoint{
			{BandwidthGBs: 1, LatencyNs: 166}, {BandwidthGBs: 233, LatencyNs: 180},
			{BandwidthGBs: 296, LatencyNs: 209}, {BandwidthGBs: 344, LatencyNs: 238},
			{BandwidthGBs: 365, LatencyNs: 330},
		})
	case "A64FX":
		return queueing.NewCurve([]queueing.CurvePoint{
			{BandwidthGBs: 2, LatencyNs: 142}, {BandwidthGBs: 575, LatencyNs: 179},
			{BandwidthGBs: 649, LatencyNs: 188}, {BandwidthGBs: 788, LatencyNs: 280},
			{BandwidthGBs: 812, LatencyNs: 330},
		})
	}
	return nil, nil
}

func benchTable(b *testing.B, id, plat string, scale float64) {
	b.Helper()
	benchTableWorkers(b, id, plat, scale, 1)
}

func benchTableWorkers(b *testing.B, id, plat string, scale float64, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{
			Scale:      scale,
			Platforms:  []string{plat},
			ProfileFor: benchProfiles,
			Workers:    workers,
		})
		t, err := r.Table(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableIV regenerates the ISx ladder (Table IV, KNL column: the
// base→vect→2HT→4HT→L2-prefetch sequence).
func BenchmarkTableIV(b *testing.B) { benchTable(b, "IV", "KNL", 0.1) }

// BenchmarkTableIV_Serial pins the table's distinct runs to one worker —
// the baseline for the parallel engine's speedup claim.
func BenchmarkTableIV_Serial(b *testing.B) { benchTableWorkers(b, "IV", "KNL", 0.1, 1) }

// BenchmarkTableIV_Parallel dispatches the table's distinct runs across
// GOMAXPROCS workers; the output is byte-identical to the serial run
// (compare against BenchmarkTableIV_Serial on a multi-core host).
func BenchmarkTableIV_Parallel(b *testing.B) { benchTableWorkers(b, "IV", "KNL", 0.1, 0) }

// BenchmarkAllTables_Serial regenerates all six tables' KNL/SKL/A64FX-free
// subset serially — see BenchmarkAllTables_Parallel.
func BenchmarkAllTables_Serial(b *testing.B) { benchAllTables(b, 1) }

// BenchmarkAllTables_Parallel regenerates every table with all distinct
// simulations across the six tables sharing one worker-pool dispatch.
func BenchmarkAllTables_Parallel(b *testing.B) { benchAllTables(b, 0) }

func benchAllTables(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{
			Scale:      0.05,
			Platforms:  []string{"KNL"},
			ProfileFor: benchProfiles,
			Workers:    workers,
		})
		ts, err := r.AllTables()
		if err != nil {
			b.Fatal(err)
		}
		if len(ts) != 6 {
			b.Fatalf("got %d tables", len(ts))
		}
	}
}

// BenchmarkTableV regenerates the HPCG ladder (Table V, KNL column).
func BenchmarkTableV(b *testing.B) { benchTable(b, "V", "KNL", 0.1) }

// BenchmarkTableVI regenerates the PENNANT ladder (Table VI, KNL column).
func BenchmarkTableVI(b *testing.B) { benchTable(b, "VI", "KNL", 0.1) }

// BenchmarkTableVII regenerates the CoMD ladder (Table VII, KNL column).
func BenchmarkTableVII(b *testing.B) { benchTable(b, "VII", "KNL", 0.1) }

// BenchmarkTableVIII regenerates the MiniGhost ladder (Table VIII, A64FX
// column — the largest tiling effect).
func BenchmarkTableVIII(b *testing.B) { benchTable(b, "VIII", "A64FX", 0.1) }

// BenchmarkTableIX regenerates the SNAP ladder (Table IX, SKL column).
func BenchmarkTableIX(b *testing.B) { benchTable(b, "IX", "SKL", 0.1) }

// BenchmarkFigure2 regenerates the MSHR-ceiling roofline with its two ISx
// points.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Scale: 0.1, ProfileFor: benchProfiles})
		m, err := r.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Points) != 2 {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkXMemOperatingPoint measures one X-Mem sweep point (full-node
// load generation plus the latency probe) — the unit of Table-III
// characterization cost.
func BenchmarkXMemOperatingPoint(b *testing.B) {
	p := platform.SKL()
	for i := 0; i < b.N; i++ {
		_, err := xmem.Characterize(p, xmem.Options{
			ProbeOps:  60,
			WarmupOps: 20,
			Levels:    []xmem.Level{{Window: 8}},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks -----------------------------------------

// BenchmarkDRAMRandomAccess measures the memory-device model's event rate
// under random traffic.
func BenchmarkDRAMRandomAccess(b *testing.B) {
	p := platform.SKL()
	sched := &events.Scheduler{}
	d := memsys.NewDRAM(sched, p)
	rng := rand.New(rand.NewSource(1))
	gap := events.FromNanoseconds(0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sched.Now() + gap
		line := memsys.Line(rng.Uint64() & (1<<24 - 1))
		sched.At(at, func() { d.Access(line, false, nil) })
		sched.RunUntil(at)
	}
	sched.Run()
}

// BenchmarkCacheAccess measures the set-associative cache hot path.
func BenchmarkCacheAccess(b *testing.B) {
	c := memsys.NewCache(512, 8)
	rng := rand.New(rand.NewSource(2))
	lines := make([]memsys.Line, 4096)
	for i := range lines {
		lines[i] = memsys.Line(rng.Uint64() & (1<<16 - 1))
	}
	for _, l := range lines {
		c.Fill(l, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Access(lines[i&4095], false) {
			c.Fill(lines[i&4095], false)
		}
	}
}

// BenchmarkHierarchyLoad measures a full L1→L2→L3→DRAM round trip through
// one core's hierarchy.
func BenchmarkHierarchyLoad(b *testing.B) {
	p := platform.SKL()
	sched := &events.Scheduler{}
	node := memsys.NewNode(sched, p)
	h := memsys.NewHierarchy(node)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		h.Access(rng.Uint64()&(1<<30-1), memsys.Load, func() { done = true })
		sched.RunWhile(func() bool { return !done })
	}
}

// BenchmarkCurveLookup measures the profile interpolation on the metric's
// hot path.
func BenchmarkCurveLookup(b *testing.B) {
	c, _ := benchProfiles(platform.SKL())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.LatencyAt(float64(i % 120))
	}
}

// BenchmarkSolveEquilibrium measures the closed-loop fixed-point solver.
func BenchmarkSolveEquilibrium(b *testing.B) {
	c, _ := benchProfiles(platform.KNL())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SolveEquilibrium(float64(100+i%1000), 64)
	}
}

// BenchmarkAnalyze measures the metric computation itself (Equation 2 +
// classification) — the part a real deployment runs per routine.
func BenchmarkAnalyze(b *testing.B) {
	p := platform.KNL()
	c, _ := benchProfiles(p)
	m := littleslaw.Measurement{Routine: "bench", BandwidthGBs: 250, PrefetchedReadFraction: 0.2, RandomAccess: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := littleslaw.Analyze(p, c, m); err != nil {
			b.Fatal(err)
		}
	}
}
