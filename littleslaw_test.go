package littleslaw

import (
	"math"
	"strings"
	"testing"

	"littleslaw/internal/queueing"
)

func testCurve() *Curve {
	return queueing.MustCurve([]queueing.CurvePoint{
		{BandwidthGBs: 0.5, LatencyNs: 82}, {BandwidthGBs: 106.9, LatencyNs: 145},
		{BandwidthGBs: 112, LatencyNs: 220},
	})
}

func TestFacadeLookups(t *testing.T) {
	if _, err := Platform("SKL"); err != nil {
		t.Fatal(err)
	}
	if _, err := Platform("M1"); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if len(Platforms()) != 3 {
		t.Fatal("want 3 platforms")
	}
	if _, err := Workload("ISx"); err != nil {
		t.Fatal(err)
	}
	if _, err := Workload("LINPACK"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if len(Workloads()) != 6 {
		t.Fatal("want 6 workloads")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	p, err := Platform("SKL")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Workload("ISx")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, p, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(p, testCurve(), MeasurementFrom(w, res))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Occupancy <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	adv := Advise(rep, w.Capabilities(p, 1))
	if len(adv) == 0 {
		t.Fatal("no advice")
	}
	if s := Explain(rep); !strings.Contains(s, "count_local_keys") {
		t.Fatalf("explanation missing routine: %s", s)
	}
	m, err := Roofline(p, testCurve())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ceilings) < 3 {
		t.Fatalf("roofline ceilings = %d", len(m.Ceilings))
	}
}

func TestFacadeTableIDs(t *testing.T) {
	ids := TableIDs()
	want := []string{"IV", "V", "VI", "VII", "VIII", "IX"}
	if len(ids) != len(want) {
		t.Fatalf("TableIDs = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("TableIDs = %v, want %v", ids, want)
		}
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	if _, err := RegenerateTable("XI", 0.05); err == nil {
		t.Fatal("unknown table id accepted")
	}
	if _, err := Platform(""); err == nil {
		t.Fatal("empty platform name accepted")
	}
	if _, err := Workload("isx "); err == nil {
		t.Fatal("malformed workload name accepted")
	}
	p, err := Platform("SKL")
	if err != nil {
		t.Fatal(err)
	}
	for _, bw := range []float64{-1, nan(), inf()} {
		if _, err := Analyze(p, testCurve(), Measurement{Routine: "r", BandwidthGBs: bw}); err == nil {
			t.Fatalf("Analyze accepted bandwidth %v", bw)
		}
	}
	if _, err := Analyze(p, nil, Measurement{Routine: "r", BandwidthGBs: 10}); err == nil {
		t.Fatal("Analyze accepted nil profile")
	}
}

func nan() float64 { return math.NaN() }
func inf() float64 { return math.Inf(1) }

func TestStanceConstants(t *testing.T) {
	if Recommend.String() != "recommend" || Discourage.String() != "discourage" || Neutral.String() != "neutral" {
		t.Fatal("stance re-exports broken")
	}
}

func TestFacadeClassify(t *testing.T) {
	p, _ := Platform("SKL")
	w, _ := Workload("PENNANT")
	prof, err := ClassifyAccesses(p.LineBytes, w.Config(p, 1, 0.05).NewGen(0, 0), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !prof.RandomAccess() {
		t.Fatalf("PENNANT classified as streaming: %s", prof)
	}
}

func TestFacadeTune(t *testing.T) {
	p, _ := Platform("SKL")
	w, _ := Workload("CoMD")
	res, err := Tune(p, testCurve(), w, TuneOptions{Scale: 0.05, Cores: 6, MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "CoMD" || len(res.Steps) == 0 {
		t.Fatalf("tune result: %+v", res)
	}
}
