// Package littleslaw reproduces "Performance Analysis and Optimization
// with Little's Law" (Mehta, ISPASS 2022) as a library: a portable
// performance metric — the memory-level parallelism of a routine,
// interpreted as average MSHR-queue occupancy — computed from observed
// bandwidth and a once-per-platform bandwidth→latency profile, plus the
// optimization recipe built on it.
//
// The package is a facade over the internal implementation:
//
//   - Platforms: the paper's three machines (SKL, KNL, A64FX) as simulated
//     nodes (internal/platform, internal/memsys);
//   - Characterize: the X-Mem-style profile measurement (internal/xmem);
//   - Workloads: the six Table-II proxy applications (internal/workloads);
//   - Run: full-node simulation of a workload variant (internal/sim);
//   - Analyze / Advise / Explain: the metric and the Figure-1 recipe
//     (internal/core);
//   - Tables / Figure2: regeneration of the paper's evaluation artifacts
//     (internal/experiments).
//
// Quickstart:
//
//	p, _ := littleslaw.Platform("KNL")
//	profile, _ := littleslaw.Characterize(p)
//	w, _ := littleslaw.Workload("ISx")
//	res, _ := littleslaw.Run(w, p, 1, 0.3)
//	report, _ := littleslaw.Analyze(p, profile, littleslaw.MeasurementFrom(w, res))
//	fmt.Println(littleslaw.Explain(report))
//	for _, a := range littleslaw.Advise(report, w.Capabilities(p, 1)) {
//		fmt.Println(a.Opt, a.Stance, a.Reason)
//	}
package littleslaw

import (
	"context"

	"littleslaw/internal/access"
	"littleslaw/internal/autotune"
	"littleslaw/internal/core"
	"littleslaw/internal/cpu"
	"littleslaw/internal/experiments"
	"littleslaw/internal/memsys"
	"littleslaw/internal/platform"
	"littleslaw/internal/queueing"
	"littleslaw/internal/roofline"
	"littleslaw/internal/runner"
	"littleslaw/internal/sim"
	"littleslaw/internal/workloads"
	"littleslaw/internal/xmem"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// PlatformSpec describes one of the paper's machines.
	PlatformSpec = platform.Platform
	// Curve is a bandwidth→latency profile.
	Curve = queueing.Curve
	// WorkloadSpec is one Table-II application routine.
	WorkloadSpec = workloads.Workload
	// Variant selects a workload's optimization state.
	Variant = workloads.Variant
	// RunResult is a full-node simulation measurement.
	RunResult = sim.Result
	// Measurement is the analyst's input to the metric.
	Measurement = core.Measurement
	// Report is the Little's-Law MLP report.
	Report = core.Report
	// Advice is one recipe verdict.
	Advice = core.Advice
	// Capabilities describes what a routine/platform allows.
	Capabilities = core.Capabilities
	// RooflineModel is the Figure-2 chart.
	RooflineModel = roofline.Model
)

// Recipe stances.
const (
	Recommend  = core.Recommend
	Neutral    = core.Neutral
	Discourage = core.Discourage
)

// Platform returns one of the paper's machines: "SKL", "KNL" or "A64FX".
func Platform(name string) (*PlatformSpec, error) { return platform.ByName(name) }

// Platforms returns all three machines in Table III order.
func Platforms() []*PlatformSpec { return platform.All() }

// Workload returns one of the six Table-II applications by name.
func Workload(name string) (WorkloadSpec, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, errUnknownWorkload(name)
	}
	return w, nil
}

// Workloads returns all six applications in Table II order.
func Workloads() []WorkloadSpec { return workloads.All() }

// Characterize measures (and process-caches) the platform's
// bandwidth→latency profile — the paper's once-per-processor artifact.
func Characterize(p *PlatformSpec) (*Curve, error) { return xmem.ProfileFor(p) }

// CharacterizeContext is Characterize with cancellation; the sweep's
// operating points fan out across the default worker pool.
func CharacterizeContext(ctx context.Context, p *PlatformSpec) (*Curve, error) {
	return xmem.ProfileForContext(ctx, p)
}

// Run simulates a workload on the full node with the given SMT depth.
// scale multiplies per-thread work (1.0 = benchmark size). All runs go
// through the shared runner spine: identical configurations are
// deduplicated and served from its cache.
func Run(w WorkloadSpec, p *PlatformSpec, threadsPerCore int, scale float64) (*RunResult, error) {
	return runner.Run(context.Background(), w.Config(p, threadsPerCore, scale))
}

// RunContext is Run with cooperative cancellation: the simulation's event
// loop polls ctx and aborts early when it is cancelled or times out.
func RunContext(ctx context.Context, w WorkloadSpec, p *PlatformSpec, threadsPerCore int, scale float64) (*RunResult, error) {
	return runner.Run(ctx, w.Config(p, threadsPerCore, scale))
}

// MeasurementFrom converts a simulated run into the metric's input, the
// way CrayPat-style counters would be read on real hardware.
func MeasurementFrom(w WorkloadSpec, res *RunResult) Measurement {
	return Measurement{
		Routine:                w.Routine(),
		BandwidthGBs:           res.TotalGBs,
		ActiveCores:            res.Cores,
		ThreadsPerCore:         res.ThreadsPerCore,
		PrefetchedReadFraction: res.PrefetchedReadFraction,
		RandomAccess:           w.RandomAccess(),
	}
}

// Analyze computes the Little's-Law MLP report (Equation 2 + the L1/L2
// MSHR classification).
func Analyze(p *PlatformSpec, profile *Curve, m Measurement) (*Report, error) {
	return core.Analyze(p, profile, m)
}

// Advise runs the Figure-1 recipe over a report.
func Advise(r *Report, caps Capabilities) []Advice { return core.Advise(r, caps) }

// Explain narrates the recipe's decision path for a report.
func Explain(r *Report) string { return core.Explain(r) }

// Roofline builds the Figure-2 roofline (bandwidth roofs plus the MSHR
// ceilings) for a platform from its measured profile.
func Roofline(p *PlatformSpec, profile *Curve) (*RooflineModel, error) {
	return roofline.New(p, profile)
}

// TableIDs lists the regenerable paper tables ("IV".."IX") in paper order.
func TableIDs() []string { return experiments.TableIDs() }

// RegenerateTable reproduces one of the paper's simulated tables
// ("IV".."IX") at the given work scale (1.0 = full size).
func RegenerateTable(id string, scale float64) (*experiments.Table, error) {
	return experiments.NewRunner(experiments.Options{Scale: scale}).Table(id)
}

// RegenerateTableContext is RegenerateTable with cancellation and the
// table's distinct runs dispatched across workers goroutines (0 means
// runtime.GOMAXPROCS(0)). The rendered table is byte-identical for any
// worker count.
func RegenerateTableContext(ctx context.Context, id string, scale float64, workers int) (*experiments.Table, error) {
	return experiments.NewRunner(experiments.Options{Scale: scale, Workers: workers}).TableContext(ctx, id)
}

type errUnknownWorkload string

func (e errUnknownWorkload) Error() string {
	return "littleslaw: unknown workload \"" + string(e) + "\" (want ISx, HPCG, PENNANT, CoMD, MiniGhost or SNAP)"
}

// TuneOptions re-exports the autotune loop's options.
type TuneOptions = autotune.Options

// TuneResult re-exports the autotune loop's result.
type TuneResult = autotune.Result

// Tune runs the Figure-1 recipe loop (measure → advise → apply →
// re-measure) to a fixed point for a workload on a platform.
func Tune(p *PlatformSpec, profile *Curve, w WorkloadSpec, opts TuneOptions) (*TuneResult, error) {
	return autotune.Tune(p, profile, w, opts)
}

// TuneContext is Tune with cancellation and concurrent candidate
// evaluation (opts.Workers); the step sequence is identical to Tune for
// any worker count.
func TuneContext(ctx context.Context, p *PlatformSpec, profile *Curve, w WorkloadSpec, opts TuneOptions) (*TuneResult, error) {
	return autotune.TuneContext(ctx, p, profile, w, opts)
}

// PatternProfile re-exports the access classifier's result.
type PatternProfile = access.Profile

// ClassifyAccesses runs the single-pass pattern classifier over the first
// maxOps operations of a generator, returning the random-vs-streaming
// classification the recipe consumes (§III-D).
func ClassifyAccesses(lineBytes int, gen cpu.Generator, maxOps int) (PatternProfile, error) {
	c, err := access.NewClassifier(lineBytes)
	if err != nil {
		return PatternProfile{}, err
	}
	for i := 0; maxOps <= 0 || i < maxOps; i++ {
		op, ok := gen.Next()
		if !ok {
			break
		}
		if op.Kind == memsys.Load || op.Kind == memsys.Store {
			c.Observe(op.Addr)
		}
	}
	return c.Profile(), nil
}
